//! The simulation engine: executes a [`Protocol`] against an [`Eve`]
//! adversary through the [`Simulation`] builder.
//!
//! # One entry point
//!
//! Every run — oblivious or adaptive adversary, single-hop or over a
//! connectivity topology, with or without an observer — goes through the
//! same builder and the same core loop:
//!
//! ```text
//! Simulation::new(&mut protocol)
//!     .eve(Eve::Oblivious(&mut adversary))   // or .adversary(..) / .adaptive(..)
//!     .topology(&topology)                   // optional; None = single-hop
//!     .config(cfg)                           // optional; EngineConfig::default()
//!     .observer(&mut observer)               // optional; no-op otherwise
//!     .run(master_seed)
//! ```
//!
//! There is exactly one simulation loop; the axes that used to be separate
//! `run*` entry points (adversary model × topology × observation) are now
//! configuration of that loop. [`Eve`] unifies the [`Adversary`] /
//! [`AdaptiveAdversary`] split behind one span-dispatching interface, so
//! both models share the idle fast-forward below.
//!
//! # Slot loop
//!
//! The engine advances segment by segment (a segment is an iteration of
//! `MultiCastCore`/`MultiCast` or one step of an `(i, j)`-phase of
//! `MultiCastAdv`). Within a segment every slot proceeds as:
//!
//! 1. **Actor sampling** (once per *round*; rounds are single slots except in
//!    round-simulated protocols such as `MultiCast(C)`): the acting subset of
//!    the active nodes is drawn exactly — each node independently lands in
//!    coin class 1 w.p. `p1`, class 2 w.p. `p2` — using geometric-skip
//!    sampling (see [`crate::sampler`]). Selected nodes choose their concrete
//!    action and channel.
//! 2. **Jamming**: the adversary is asked (slot index and channel count only
//!    — she is oblivious) which channels she jams; the engine charges her
//!    budget and truncates the request if she cannot afford it.
//! 3. **Resolution**: per channel — silence / message / noise per the model
//!    of Section 3 of the paper; listeners receive feedback; energy is
//!    charged to every listener and broadcaster.
//! 4. **Boundaries**: at a segment's end every active node runs its
//!    end-of-segment checks and may halt.
//!
//! # Idle-round fast-forward
//!
//! In late iterations/epochs the action probability decays geometrically, so
//! almost every round samples **zero actors** — the paper's protocols spend
//! most of their wall-clock in silence. The engine therefore treats a
//! segment's actor sampling as one geometric-skip process carried across
//! rounds ([`TwoClassRoundStream`]): an empty round consumes no randomness,
//! and the length of a run of consecutive empty rounds is known from the
//! carried skip in O(1). When a round comes up empty (and
//! [`EngineConfig::fast_forward`] is on), the engine jumps over the whole
//! run of empty rounds at once:
//!
//! * Eve's budget is charged **exactly** via the span-batched
//!   [`Adversary::jam_span`] API — by contract equivalent to per-slot `jam`
//!   calls under the engine's budget rule (the default implementation *is*
//!   that loop; structured jammers supply closed forms).
//! * No channel board, feedback, or per-slot observer work happens;
//!   observers get a single [`Observer::on_idle_span`] event.
//!
//! The fast-forward is sound for **adaptive** adversaries too: a span is
//! skipped only when provably no node acts in it, so the band is silent and
//! Eve observes nothing she could react to. [`AdaptiveAdversary::jam_span`]
//! receives the observation of the last *executed* slot for the span's
//! first slot and the silent observation for the rest, which is exactly the
//! observation stream the per-slot path would deliver; after the span the
//! engine records the silent band as the previous-slot observation.
//!
//! For adversaries whose `jam_span` is exact (everything in `rcb-adversary`
//! except the Markov-state `GilbertElliott`), a fast-forwarded run produces a
//! [`RunOutcome`] byte-identical to the slot-by-slot path
//! (`fast_forward: false`), including RNG stream states — enforced by the
//! `fast_forward` and `adaptive_fast_forward` integration test matrices.
//! [`Sampling::DensePerNode`] always takes the slot-by-slot path.
//!
//! # Multi-hop topologies
//!
//! Mounting a [`Topology`] with [`Simulation::topology`] threads it through
//! the run: the delivery step only lets a listener hear broadcasters
//! **adjacent** to it in the current round ([`TopologyView::connected`]),
//! informed nodes act as relay sources, and "everyone informed" means every
//! node *reachable* from the source. [`Topology::Complete`] reproduces the
//! single-hop model byte-for-byte — same RNG draws, same traces, same
//! fast-forward spans as a topology-free run (enforced by
//! `tests/topology_equivalence.rs`): the per-listener adjacency resolution
//! degenerates to the channel-board semantics, and topology construction
//! draws only from the topology's own seeds.
//!
//! # Multi-message broadcast
//!
//! A protocol may carry `k > 1` concurrent payloads
//! ([`Protocol::num_messages`], payload-multiplexed via
//! [`crate::Payload::Msg`]). The engine then tracks, per message, how many
//! nodes know it and the slot by which every reachable node knew it
//! ([`RunOutcome::messages`]); nodes report their knowledge as a bitmask
//! ([`crate::ProtocolNode::informed_mask`]). For `k = 1` the per-message
//! record is synthesized from the run-level counters, so the single-message
//! hot path is unchanged.
//!
//! # Determinism
//!
//! A run is a pure function of `(protocol, adversary, topology,
//! master_seed)`: node streams and the engine's sampling stream are derived
//! from the master seed with [`derive_seed`], the adversary carries its own
//! seeded stream, and topologies carry theirs (dynamic edge churn is
//! counter-based, so skipped rounds never materialize an edge set).

use crate::adaptive::{AdaptiveAdversary, BandObservation};
use crate::channel::{ChannelBoard, Feedback, Payload};
use crate::jamset::JamSet;
use crate::metrics::{MessageOutcome, NodeExtra, NodeOutcome, RunOutcome, SlotStats};
use crate::protocol::{
    Action, Adversary, BoundaryDecision, Coin, NodeId, Protocol, ProtocolNode, SlotProfile,
    SpanCharge,
};
use crate::rng::{derive_seed, Xoshiro256};
use crate::sampler::TwoClassRoundStream;
use crate::schedule::{
    realize_partition, LinkLoss, ScheduleMarker, WorldEvent, WorldSchedule, LINK_LOSS_STREAM,
};
use crate::telemetry::EngineTelemetry;
use crate::topology::{edge_id, Topology, TopologyView};
use crate::trace::Observer;
use std::time::Instant;

/// How the engine samples the per-slot acting subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Sampling {
    /// Geometric-skip subset sampling from a dedicated engine stream
    /// (`O(#actors)` per slot), carried across the rounds of a segment so
    /// empty rounds consume no randomness (see
    /// [`TwoClassRoundStream`]). The default, and the only mode eligible
    /// for the idle fast-forward.
    #[default]
    Sparse,
    /// Reference mode: every active node flips its own coin from its own
    /// stream each round (`O(n)` per slot), exactly like the paper's
    /// pseudocode. Used by tests to cross-validate the sparse path.
    DensePerNode,
}

/// Engine limits and switches.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Hard cap on executed slots; the run stops there regardless of
    /// protocol state (prevents runaway configurations).
    pub max_slots: u64,
    /// Stop as soon as every node is informed (useful for protocols without
    /// termination detection, e.g. the naive epidemic baseline).
    pub stop_when_all_informed: bool,
    /// Actor sampling mode.
    pub sampling: Sampling,
    /// Fast-forward runs of idle rounds (see the module docs). On by
    /// default; turn off to force the slot-by-slot reference path, e.g. for
    /// cross-validation or per-slot observer traces. Only effective with
    /// [`Sampling::Sparse`]; covers both oblivious and adaptive adversaries
    /// (a skipped span is provably silent, so an adaptive Eve observes
    /// nothing in it).
    pub fast_forward: bool,
    /// Collect per-phase wall-clock into
    /// [`EngineTelemetry::phases`](crate::EngineTelemetry): setup, slot
    /// loop, fast-forward, finalize. Off by default — with it off the
    /// telemetry is a pure function of the run inputs and artifacts built
    /// from it stay byte-identical across hosts and repeats. The clock is
    /// read strictly outside the RNG/decision path either way, so the
    /// *outcome* is never affected.
    pub time_phases: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_slots: 200_000_000,
            stop_when_all_informed: false,
            sampling: Sampling::Sparse,
            fast_forward: true,
            time_phases: false,
        }
    }
}

impl EngineConfig {
    /// Config with a custom slot cap.
    pub fn capped(max_slots: u64) -> Self {
        Self {
            max_slots,
            ..Self::default()
        }
    }
}

struct NoopObserver;
impl Observer for NoopObserver {}

/// Forwards every event to the wrapped observer while counting invocations
/// for [`EngineTelemetry::observer_events`]. The count is therefore the
/// same whether or not a real observer is mounted.
struct CountingObserver<'a> {
    inner: &'a mut dyn Observer,
    events: u64,
}

impl Observer for CountingObserver<'_> {
    fn on_informed(&mut self, node: NodeId, slot: u64) {
        self.events += 1;
        self.inner.on_informed(node, slot);
    }

    fn on_halted(&mut self, node: NodeId, slot: u64) {
        self.events += 1;
        self.inner.on_halted(node, slot);
    }

    fn on_boundary(&mut self, slot: u64, profile: &SlotProfile, active: u32, informed: u32) {
        self.events += 1;
        self.inner.on_boundary(slot, profile, active, informed);
    }

    fn on_slot(&mut self, slot: u64, stats: &SlotStats) {
        self.events += 1;
        self.inner.on_slot(slot, stats);
    }

    fn on_idle_span(&mut self, slot: u64, len: u64, jammed: u64) {
        self.events += 1;
        self.inner.on_idle_span(slot, len, jammed);
    }
}

/// The adversary seat of a [`Simulation`]: nobody, the paper's oblivious
/// model, or the Section 8 adaptive extension.
///
/// `Eve` absorbs the old `Adversary` / `AdaptiveAdversary` dispatch split
/// behind one span-dispatching interface: the engine talks to whichever
/// model is mounted through the same [`jam`](Eve::jam) /
/// [`jam_span`](Eve::jam_span) calls, so both share the slot loop *and* the
/// idle fast-forward (a skipped span is provably silent, so an adaptive Eve
/// observes nothing in it — see the module docs for the soundness
/// argument).
///
/// ```
/// use rcb_sim::{BandObservation, Eve, JamSet, NoAdversary};
///
/// // Both adversary models fit the same seat.
/// let mut quiet = NoAdversary;
/// let mut eve = Eve::Oblivious(&mut quiet);
/// assert_eq!(eve.budget(), 0);
/// assert_eq!(eve.jam(0, 8, &BandObservation::default()), JamSet::Empty);
/// // Oblivious strategies never read the band, so the engine can skip
/// // collecting observations entirely.
/// assert!(!eve.observes());
/// assert_eq!(Eve::Silent.budget(), 0);
/// ```
#[derive(Default)]
pub enum Eve<'a> {
    /// No jamming at all (a zero-budget Eve). The default seat.
    #[default]
    Silent,
    /// The paper's model: Eve sees only the slot index and channel count.
    Oblivious(&'a mut dyn Adversary),
    /// The Section 8 extension: Eve additionally observes, each slot, which
    /// channels carried transmissions in the previous slot.
    Adaptive(&'a mut dyn AdaptiveAdversary),
}

impl Eve<'_> {
    /// Eve's total energy budget `T`.
    pub fn budget(&self) -> u64 {
        match self {
            Eve::Silent => 0,
            Eve::Oblivious(a) => a.budget(),
            Eve::Adaptive(a) => a.budget(),
        }
    }

    /// The jam set for `slot`. `prev` is the previous slot's band
    /// observation; it reaches only an adaptive Eve.
    #[inline]
    pub fn jam(&mut self, slot: u64, channels: u64, prev: &BandObservation) -> JamSet {
        match self {
            Eve::Silent => JamSet::Empty,
            Eve::Oblivious(a) => a.jam(slot, channels),
            Eve::Adaptive(a) => a.jam(slot, channels, prev),
        }
    }

    /// Span-batched budget charge over an idle span. `prev` is the band
    /// observation of the slot before the span; it reaches only an adaptive
    /// Eve (and only her first span slot — the rest of the span is provably
    /// silent, so she observes nothing further).
    pub fn jam_span(
        &mut self,
        start: u64,
        len: u64,
        channels: u64,
        budget: u64,
        prev: &BandObservation,
    ) -> SpanCharge {
        match self {
            Eve::Silent => SpanCharge::default(),
            Eve::Oblivious(a) => a.jam_span(start, len, channels, budget),
            Eve::Adaptive(a) => a.jam_span(start, len, channels, budget, prev),
        }
    }

    /// Whether the engine must collect per-slot band observations.
    pub fn observes(&self) -> bool {
        match self {
            Eve::Silent | Eve::Oblivious(_) => false,
            Eve::Adaptive(a) => a.needs_observations(),
        }
    }
}

/// Builder for one engine run — the crate's single simulation entry point.
///
/// Mount what the run needs (adversary seat, topology, config, observer)
/// and call [`run`](Simulation::run). Unset axes take their defaults: a
/// [`Eve::Silent`] seat, single-hop delivery, [`EngineConfig::default`],
/// and no observer.
///
/// ```
/// use rcb_sim::{
///     Action, BoundaryDecision, Coin, EngineConfig, Eve, Feedback, NoAdversary,
///     Payload, Protocol, ProtocolNode, Simulation, SlotProfile, Topology, Xoshiro256,
/// };
///
/// // A minimal relay protocol: informed nodes broadcast, uninformed nodes
/// // listen, all on a random channel; nobody ever halts.
/// struct Relay { n: u32 }
/// struct Node { informed: bool }
///
/// impl Protocol for Relay {
///     type Node = Node;
///     fn num_nodes(&self) -> u32 { self.n }
///     fn segment(&mut self, _start: u64) -> SlotProfile {
///         SlotProfile {
///             p1: 0.5, p2: 0.5, channels: 2, virt_channels: 2, round_len: 1,
///             seg_len: 1 << 40, seg_major: 0, seg_minor: 0, step: 0,
///         }
///     }
///     fn make_node(&self, _id: u32, is_source: bool) -> Node {
///         Node { informed: is_source }
///     }
/// }
///
/// impl ProtocolNode for Node {
///     fn on_selected(&mut self, p: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
///         let ch = rng.gen_range(p.virt_channels);
///         match coin {
///             Coin::One if !self.informed => Action::Listen { ch },
///             Coin::Two if self.informed => Action::Broadcast { ch, payload: Payload::Data },
///             _ => Action::Idle,
///         }
///     }
///     fn on_feedback(&mut self, _p: &SlotProfile, fb: Feedback) {
///         if fb == Feedback::Message(Payload::Data) { self.informed = true; }
///     }
///     fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
///         BoundaryDecision::Continue
///     }
///     fn is_informed(&self) -> bool { self.informed }
/// }
///
/// // On the 8-node line the message travels hop by hop; completion means
/// // the source's whole reachable component (here: everyone) is informed.
/// let cfg = EngineConfig { stop_when_all_informed: true, ..EngineConfig::capped(1_000_000) };
/// let out = Simulation::new(&mut Relay { n: 8 })
///     .topology(&Topology::Line)
///     .config(cfg)
///     .run(7);
/// assert!(out.all_informed);
/// assert_eq!(out.reachable, 8);
///
/// // The same run spelled with an explicit (zero-budget) adversary seat is
/// // byte-identical: NoAdversary and Eve::Silent never draw randomness.
/// let out2 = Simulation::new(&mut Relay { n: 8 })
///     .eve(Eve::Oblivious(&mut NoAdversary))
///     .topology(&Topology::Line)
///     .config(cfg)
///     .run(7);
/// assert_eq!(out, out2);
/// ```
pub struct Simulation<'a, P: Protocol> {
    protocol: &'a mut P,
    eve: Eve<'a>,
    swap_eves: Vec<Eve<'a>>,
    topology: Option<&'a Topology>,
    schedule: Option<&'a WorldSchedule>,
    config: EngineConfig,
    observer: Option<&'a mut dyn Observer>,
}

impl<'a, P: Protocol> Simulation<'a, P> {
    /// Start a builder for a run of `protocol`.
    pub fn new(protocol: &'a mut P) -> Self {
        Self {
            protocol,
            eve: Eve::Silent,
            swap_eves: Vec::new(),
            topology: None,
            schedule: None,
            config: EngineConfig::default(),
            observer: None,
        }
    }

    /// Mount an adversary seat (any [`Eve`] variant).
    pub fn eve(mut self, eve: Eve<'a>) -> Self {
        self.eve = eve;
        self
    }

    /// Mount an oblivious adversary — sugar for
    /// `.eve(Eve::Oblivious(adversary))`.
    pub fn adversary(self, adversary: &'a mut dyn Adversary) -> Self {
        self.eve(Eve::Oblivious(adversary))
    }

    /// Mount an adaptive (band-observing) adversary — sugar for
    /// `.eve(Eve::Adaptive(adversary))`.
    pub fn adaptive(self, adversary: &'a mut dyn AdaptiveAdversary) -> Self {
        self.eve(Eve::Adaptive(adversary))
    }

    /// Run over a connectivity [`Topology`]. Accepts `&Topology`,
    /// `Some(&Topology)`, or `None` (the single-hop default, handy when a
    /// caller threads an `Option` through). [`Topology::Complete`] is
    /// byte-identical to not mounting a topology at all.
    pub fn topology(mut self, topology: impl Into<Option<&'a Topology>>) -> Self {
        self.topology = topology.into();
        self
    }

    /// Mount a declarative [`WorldSchedule`] — the nemesis layer of
    /// time-indexed fault events (adversary swaps, partitions, crashes,
    /// lossy links). Events are applied at round starts; a mounted-but-empty
    /// schedule is byte-identical to no schedule at all (see the
    /// [`crate::schedule`] module docs).
    pub fn schedule(mut self, schedule: &'a WorldSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Queue an adversary seat for the schedule's next
    /// [`WorldEvent::SwapEve`] event. Call once per `SwapEve`, in event
    /// order; the incoming Eve starts with her own full budget. A `SwapEve`
    /// with an exhausted queue is a no-op.
    pub fn swap_eve(mut self, eve: Eve<'a>) -> Self {
        self.swap_eves.push(eve);
        self
    }

    /// Replace the default [`EngineConfig`].
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Stream engine events into `observer`.
    pub fn observer(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Execute the run with the given master seed. A run is a pure function
    /// of `(protocol, eve, topology, config, master_seed)` — see the module
    /// docs' determinism section.
    pub fn run(self, master_seed: u64) -> RunOutcome {
        self.run_with_telemetry(master_seed).0
    }

    /// Like [`run`](Self::run), but also return the run's
    /// [`EngineTelemetry`] — slots stepped vs. fast-forwarded, span
    /// statistics, RNG draws, jam-budget split, observer events, and (with
    /// [`EngineConfig::time_phases`]) per-phase wall-clock. Collecting it
    /// never perturbs the run: `run` and `run_with_telemetry` produce
    /// byte-identical [`RunOutcome`]s for the same inputs.
    pub fn run_with_telemetry(self, master_seed: u64) -> (RunOutcome, EngineTelemetry) {
        let Self {
            protocol,
            eve,
            swap_eves,
            topology,
            schedule,
            config,
            observer,
        } = self;
        let mut noop = NoopObserver;
        run_core(
            protocol,
            eve,
            swap_eves,
            topology,
            schedule,
            master_seed,
            &config,
            observer.unwrap_or(&mut noop),
        )
    }
}

/// The single simulation loop behind [`Simulation::run`].
#[allow(clippy::too_many_arguments)]
fn run_core<'e, P: Protocol>(
    protocol: &mut P,
    mut eve: Eve<'e>,
    swap_eves: Vec<Eve<'e>>,
    topology: Option<&Topology>,
    schedule: Option<&WorldSchedule>,
    master_seed: u64,
    cfg: &EngineConfig,
    observer: &mut dyn Observer,
) -> (RunOutcome, EngineTelemetry) {
    let n = protocol.num_nodes();
    assert!(n >= 2, "broadcast needs at least a source and one receiver");

    let mut tel = EngineTelemetry::default();
    // Observer events are counted through a forwarding wrapper so the tally
    // is identical with and without a mounted observer.
    let mut observer = CountingObserver {
        inner: observer,
        events: 0,
    };
    // Wall-clock is read only under `time_phases`, and only between phases
    // or around whole spans — never inside the per-slot hot section.
    let t_setup = cfg.time_phases.then(Instant::now);

    // World schedule (nemesis layer). An empty slice behaves exactly like
    // no schedule: every guard below degenerates to the unscheduled engine.
    let sched: &[(u64, WorldEvent)] = schedule.map_or(&[], WorldSchedule::events);
    let mut next_event_idx: usize = 0;
    let swaps_observe = swap_eves.iter().any(Eve::observes);
    let mut swap_queue = swap_eves.into_iter();
    let mut timeline: Vec<ScheduleMarker> = Vec::new();
    let mut partition: Option<Vec<u32>> = None;
    // The link-loss overlay hashes (seed, round, edge) statelessly;
    // derive_seed draws nothing, so unscheduled runs are unaffected.
    let mut link_loss = LinkLoss::new(derive_seed(master_seed, LINK_LOSS_STREAM));

    // Realized connectivity; construction draws only from the topology's
    // own seeds, so the node/engine RNG streams below are untouched.
    // Partition / link-loss events gate delivery per listener, so a
    // single-hop run with such events gets a synthesized Complete view
    // (byte-identical delivery — see tests/topology_equivalence.rs).
    let needs_view = !sched.is_empty() && sched.iter().any(|(_, e)| e.affects_connectivity());
    let complete = Topology::Complete;
    let topo = topology
        .or(if needs_view { Some(&complete) } else { None })
        .map(|t| TopologyView::build(t, n));
    // "Everyone" means every node the source can reach at all. Compared
    // with >= rather than == defensively: a protocol's boundary inference
    // could in principle mark an unreachable node informed.
    let informed_target: u32 = topo.as_ref().map_or(n, TopologyView::reachable_count);

    // Stream 0 is the engine's sampling stream; node i uses stream i + 1.
    let mut engine_rng = Xoshiro256::seeded(derive_seed(master_seed, 0));
    let mut node_rngs: Vec<Xoshiro256> = (0..n)
        .map(|i| Xoshiro256::seeded(derive_seed(master_seed, i as u64 + 1)))
        .collect();

    let mut nodes: Vec<P::Node> = (0..n).map(|i| protocol.make_node(i, i == 0)).collect();
    let mut active: Vec<u32> = (0..n).collect();

    let mut informed_at: Vec<Option<u64>> = vec![None; n as usize];
    informed_at[0] = Some(0); // the source knows m from the start
    let mut halted_at: Vec<Option<u64>> = vec![None; n as usize];
    let mut halted_informed: Vec<bool> = vec![false; n as usize];
    let mut listen_cost: Vec<u64> = vec![0; n as usize];
    let mut bcast_cost: Vec<u64> = vec![0; n as usize];
    let mut informed_count: u32 = 1;

    // Crash bookkeeping (nemesis layer): crashed nodes keep their state but
    // leave the actor pool and the live completion accounting.
    let mut crashed: Vec<bool> = vec![false; n as usize];
    let mut crashed_count: u32 = 0;
    let mut crashed_reachable: u32 = 0;
    let mut crashed_informed: u32 = 0;
    // Slot from which the current crashed_count has been in effect, for the
    // crashed-node-slot telemetry integral.
    let mut crash_from: u64 = 0;

    // Per-message tracking (multi-message protocols only). The k = 1 hot
    // path skips all of it and synthesizes its single MessageOutcome from
    // the run-level counters at the end.
    let k_msgs = protocol.num_messages();
    assert!(
        (1..=64).contains(&k_msgs),
        "num_messages must be in 1..=64, got {k_msgs}"
    );
    let multi = k_msgs > 1;
    let msg_all: u64 = if k_msgs == 64 {
        u64::MAX
    } else {
        (1u64 << k_msgs) - 1
    };
    let tracked = if multi { k_msgs as usize } else { 0 };
    let mut msg_mask: Vec<u64> = Vec::new();
    let mut msg_informed_count: Vec<u32> = vec![0; tracked];
    let mut msg_informed_at: Vec<Option<u64>> = vec![None; tracked];
    let mut msg_halted_knowing: Vec<u32> = vec![0; tracked];
    if multi {
        msg_mask = nodes
            .iter()
            .map(|nd| nd.informed_mask() & msg_all)
            .collect();
        for &mask in &msg_mask {
            let mut bits = mask;
            while bits != 0 {
                msg_informed_count[bits.trailing_zeros() as usize] += 1;
                bits &= bits - 1;
            }
        }
        for j in 0..tracked {
            if msg_informed_count[j] >= informed_target {
                msg_informed_at[j] = Some(0);
            }
        }
    }

    let mut eve_remaining = eve.budget();
    let mut eve_spent: u64 = 0;

    let mut totals = SlotStats::default();
    let mut board = ChannelBoard::new();

    // Scratch buffers reused across slots.
    let mut class1: Vec<u32> = Vec::new();
    let mut class2: Vec<u32> = Vec::new();
    // Buffered actions per sub-slot of the current round.
    let mut round_buf: Vec<Vec<(u32, Action)>> = vec![Vec::new()];
    // Listeners of the current physical slot: (node, physical channel).
    let mut listeners: Vec<(u32, u64)> = Vec::new();
    // Broadcasters of the current physical slot, kept with their node ids
    // for the topology-aware delivery step (topology runs only).
    let mut bcasters: Vec<(u32, u64, Payload)> = Vec::new();
    // Band observations for adaptive adversaries (previous slot / scratch);
    // maintained only when the adversary actually reads them.
    let observes = eve.observes() || swaps_observe;
    let mut prev_obs = BandObservation::default();
    let mut next_obs = BandObservation::default();

    let fast_forward = cfg.fast_forward && cfg.sampling == Sampling::Sparse;
    // The channel board is read for listener outcomes on the single-hop
    // path and for band observations when the adversary senses; on a
    // topology run with an oblivious adversary nothing ever reads it.
    let use_board = topo.is_none() || observes;

    let mut slot: u64 = 0;
    let mut prof = checked_profile(protocol.segment(0), n);
    let mut seg_start: u64 = 0;
    let mut seg_end: u64 = prof.seg_len; // profiles have seg_len >= 1
    let sparse = cfg.sampling == Sampling::Sparse;
    // The segment's actor-sampling stream (sparse mode only).
    let mut stream =
        sparse.then(|| TwoClassRoundStream::new(&mut engine_rng, active.len(), prof.p1, prof.p2));
    // Heuristic fast-forward gate: per segment, engage the span machinery
    // only when idle rounds are likely enough (and the run long enough) for
    // the bookkeeping to pay for itself. Outcomes are byte-identical either
    // way (the ff=true/ff=false equivalence the fast_forward tests pin);
    // only telemetry's stepped/span split moves.
    let mut ff_active = fast_forward && ff_worth_it(&prof, active.len(), cfg.max_slots);
    if fast_forward && !ff_active {
        tel.ff_gated_segments += 1;
    }

    if let Some(t) = t_setup {
        tel.phases.setup = t.elapsed().as_nanos() as u64;
    }
    let t_loop = cfg.time_phases.then(Instant::now);
    let mut ff_nanos: u64 = 0;

    while slot < cfg.max_slots {
        let round_len = prof.round_len as u64;
        let sub = (slot - seg_start) % round_len;
        let mut fast_forwarded = false;

        // --- 0. Apply pending schedule events at round starts ----------------
        // An event scheduled at slot s takes effect at the first round start
        // >= s; fast-forward spans are clipped below so that round start is
        // always a span boundary.
        if sub == 0 && next_event_idx < sched.len() && sched[next_event_idx].0 <= slot {
            let mut active_changed = false;
            while next_event_idx < sched.len() && sched[next_event_idx].0 <= slot {
                let (scheduled_at, event) = &sched[next_event_idx];
                next_event_idx += 1;
                tel.schedule_events += 1;
                tel.crashed_node_slots += u64::from(crashed_count) * (slot - crash_from);
                crash_from = slot;
                match event {
                    WorldEvent::SwapEve => {
                        // An exhausted swap queue makes this a recorded no-op.
                        if let Some(next_eve) = swap_queue.next() {
                            eve = next_eve;
                            eve_remaining = eve.budget();
                        }
                    }
                    WorldEvent::Partition { groups } => {
                        partition = Some(realize_partition(groups, n));
                    }
                    WorldEvent::Heal => partition = None,
                    WorldEvent::CrashNodes { nodes: list } => {
                        for &nid in list {
                            let i = nid as usize;
                            if nid >= n || crashed[i] || halted_at[i].is_some() {
                                continue;
                            }
                            crashed[i] = true;
                            crashed_count += 1;
                            if topo.as_ref().is_none_or(|v| v.is_reachable(nid)) {
                                crashed_reachable += 1;
                            }
                            if informed_at[i].is_some() {
                                crashed_informed += 1;
                            }
                            active_changed = true;
                        }
                    }
                    WorldEvent::RecoverNodes { nodes: list } => {
                        for &nid in list {
                            let i = nid as usize;
                            if nid >= n || !crashed[i] {
                                continue;
                            }
                            crashed[i] = false;
                            crashed_count -= 1;
                            if topo.as_ref().is_none_or(|v| v.is_reachable(nid)) {
                                crashed_reachable -= 1;
                            }
                            if informed_at[i].is_some() {
                                crashed_informed -= 1;
                            }
                            active_changed = true;
                        }
                    }
                    WorldEvent::SetLinkLoss { p } => link_loss.set_p(*p),
                }
                timeline.push(ScheduleMarker {
                    scheduled_at: *scheduled_at,
                    applied_at: slot,
                    kind: event.kind(),
                });
            }
            if active_changed {
                active.clear();
                active.extend(
                    (0..n).filter(|&i| halted_at[i as usize].is_none() && !crashed[i as usize]),
                );
                if sparse {
                    // The actor pool changed size mid-segment: restart the
                    // sampling stream over the new pool. No stream at all
                    // while every node is down (dead air).
                    stream = (!active.is_empty()).then(|| {
                        TwoClassRoundStream::new(&mut engine_rng, active.len(), prof.p1, prof.p2)
                    });
                    // Dead air is always worth skipping: with no stream the
                    // fast-forward branch is the only way past crashed-out
                    // stretches, so the gate never blocks it.
                    ff_active = fast_forward
                        && (active.is_empty()
                            || ff_worth_it(&prof, active.len(), cfg.max_slots - slot));
                    if fast_forward && !ff_active {
                        tel.ff_gated_segments += 1;
                    }
                }
            }
        }

        // With everyone halted the run is over unless crashed nodes remain
        // that a pending RecoverNodes event could still re-admit. Events
        // past this point are never applied and leave no timeline marker.
        if active.is_empty() && (crashed_count == 0 || next_event_idx >= sched.len()) {
            break;
        }
        if cfg.stop_when_all_informed {
            // While crashes are in play and no events remain, completion is
            // survivor-relative: crashed nodes can neither learn nor be
            // waited on. Pending events keep the strict criterion, since a
            // later RecoverNodes may re-admit crashed nodes.
            let done = if crashed_count == 0 || next_event_idx < sched.len() {
                informed_count >= informed_target
            } else {
                informed_count.saturating_sub(crashed_informed)
                    >= informed_target.saturating_sub(crashed_reachable)
            };
            if done {
                break;
            }
        }

        // --- 1. Actor sampling / idle fast-forward at round start -----------
        if sub == 0 {
            if ff_active {
                let empty_rounds = match stream.as_mut() {
                    Some(s) => s.empty_rounds_ahead(),
                    // Dead air: every node is crashed, every round is empty.
                    None => u64::MAX,
                };
                if empty_rounds > 0 {
                    let t_span = cfg.time_phases.then(Instant::now);
                    // The run of empty rounds ahead, clipped to the segment
                    // (profiles change at boundaries) and to the slot cap.
                    let rounds_left = (seg_end - slot) / round_len;
                    let mut whole_rounds = empty_rounds.min(rounds_left);
                    if next_event_idx < sched.len() {
                        // Never skip past a pending event: clip the span so
                        // the event's round start stays a span boundary.
                        let gap = sched[next_event_idx].0.saturating_sub(slot).max(1);
                        whole_rounds = whole_rounds.min(gap.div_ceil(round_len));
                    }
                    let mut span = whole_rounds * round_len;
                    let avail = cfg.max_slots - slot;
                    if span > avail {
                        span = avail; // ends the run; a partial round is fine
                        whole_rounds = span / round_len;
                    }
                    let spent = if eve_remaining > 0 {
                        let charge =
                            eve.jam_span(slot, span, prof.channels, eve_remaining, &prev_obs);
                        debug_assert!(charge.spent <= eve_remaining, "jam_span overspent");
                        // Clamp in release too: a buggy closed-form override
                        // must bankrupt Eve, not underflow her into riches.
                        let spent = charge.spent.min(eve_remaining);
                        eve_remaining -= spent;
                        eve_spent += spent;
                        totals.jammed += spent;
                        spent
                    } else {
                        0
                    };
                    // The span's slots are silent, so after it the previous
                    // slot's observation is the empty band — exactly what the
                    // per-slot path would have recorded for every span slot.
                    if observes {
                        prev_obs.clear();
                        prev_obs.channels = prof.channels;
                    }
                    if let Some(s) = stream.as_mut() {
                        s.skip_rounds(whole_rounds);
                    }
                    tel.record_span(span, spent);
                    observer.on_idle_span(slot, span, spent);
                    slot += span;
                    fast_forwarded = true;
                    if let Some(t) = t_span {
                        ff_nanos += t.elapsed().as_nanos() as u64;
                    }
                }
            }
            // ==== TELEMETRY HOT SECTION: BEGIN =============================
            // Per-slot execution path. No wall-clock reads allowed in this
            // range (CI greps it for clock calls); timing stays at phase
            // granularity so throughput is never spent on the clock.
            if !fast_forwarded {
                for buf in &mut round_buf {
                    buf.clear();
                }
                if round_buf.len() < round_len as usize {
                    round_buf.resize_with(round_len as usize, Vec::new);
                }
                class1.clear();
                class2.clear();
                match cfg.sampling {
                    Sampling::Sparse => {
                        // The stream is absent only while every node is
                        // crashed; dead-air slots sample no actors.
                        if let Some(s) = stream.as_mut() {
                            s.next_round(&mut engine_rng, &mut class1, &mut class2);
                        }
                    }
                    Sampling::DensePerNode => {
                        for (idx, &nid) in active.iter().enumerate() {
                            let u = node_rngs[nid as usize].next_f64();
                            if u < prof.p1 {
                                class1.push(idx as u32);
                            } else if u < prof.p1 + prof.p2 {
                                class2.push(idx as u32);
                            }
                        }
                    }
                }
                for (list, coin) in [(&class1, Coin::One), (&class2, Coin::Two)] {
                    for &idx in list.iter() {
                        let nid = active[idx as usize];
                        let action = nodes[nid as usize].on_selected(
                            &prof,
                            coin,
                            &mut node_rngs[nid as usize],
                        );
                        match action {
                            Action::Idle => {}
                            Action::Listen { ch } | Action::Broadcast { ch, .. } => {
                                debug_assert!(
                                    ch < prof.virt_channels,
                                    "node picked channel {ch} of {}",
                                    prof.virt_channels
                                );
                                let (target, phys) = if round_len == 1 {
                                    (0u64, ch)
                                } else {
                                    (ch / prof.channels, ch % prof.channels)
                                };
                                let mapped = match action {
                                    Action::Listen { .. } => Action::Listen { ch: phys },
                                    Action::Broadcast { payload, .. } => {
                                        Action::Broadcast { ch: phys, payload }
                                    }
                                    Action::Idle => unreachable!(),
                                };
                                round_buf[target as usize].push((nid, mapped));
                            }
                        }
                    }
                }
            }
        }

        if !fast_forwarded {
            // --- 2. Jamming --------------------------------------------------
            // `take` is both her spend and the size of the (possibly
            // truncated) jam set, so it is never recounted.
            let (jam, take) = if eve_remaining == 0 {
                (JamSet::Empty, 0)
            } else {
                let request = eve.jam(slot, prof.channels, &prev_obs);
                let want = request.count(prof.channels);
                let take = want.min(eve_remaining);
                eve_remaining -= take;
                eve_spent += take;
                tel.jam_spent_stepped += take;
                let jam = if take < want {
                    request.truncate(take, prof.channels)
                } else {
                    request
                };
                (jam.normalize(prof.channels), take)
            };

            // --- 3. Execute this sub-slot's buffered actions -----------------
            board.clear();
            listeners.clear();
            bcasters.clear();
            let mut slot_stats = SlotStats {
                jammed: take,
                ..SlotStats::default()
            };
            for &(nid, action) in &round_buf[sub as usize] {
                match action {
                    Action::Idle => {}
                    Action::Listen { ch } => {
                        listen_cost[nid as usize] += 1;
                        slot_stats.listens += 1;
                        listeners.push((nid, ch));
                    }
                    Action::Broadcast { ch, payload } => {
                        bcast_cost[nid as usize] += 1;
                        slot_stats.broadcasts += 1;
                        if use_board {
                            board.add_broadcast(ch, payload);
                        }
                        if topo.is_some() {
                            bcasters.push((nid, ch, payload));
                        }
                    }
                }
            }
            if use_board {
                board.resolve();
            }
            // Dynamic topologies churn per round; key edges by the round's
            // starting slot.
            let round_key = slot - sub;
            for &(nid, ch) in &listeners {
                let jammed = jam.contains(ch, prof.channels);
                let fb = match &topo {
                    // Topology-aware delivery: only adjacent broadcasters
                    // count. For `Topology::Complete` every broadcaster is
                    // adjacent, which reproduces the board semantics below
                    // exactly (same silence/message/noise per listener).
                    Some(view) => {
                        if jammed {
                            Feedback::Noise
                        } else {
                            let mut heard = 0u32;
                            let mut payload = Payload::Data;
                            for &(bid, bch, pl) in &bcasters {
                                if bch != ch || !view.connected(bid, nid, round_key) {
                                    continue;
                                }
                                // Nemesis overlays gate delivery on top of
                                // the base topology: cross-group edges are
                                // cut while a partition is live, and lossy
                                // links drop per (round, edge).
                                if let Some(p) = &partition {
                                    if p[bid as usize] != p[nid as usize] {
                                        continue;
                                    }
                                }
                                if link_loss.active()
                                    && link_loss.is_lost(round_key, edge_id(n, bid, nid))
                                {
                                    continue;
                                }
                                heard += 1;
                                payload = pl;
                                if heard == 2 {
                                    break;
                                }
                            }
                            match heard {
                                0 => Feedback::Silence,
                                1 => Feedback::Message(payload),
                                _ => Feedback::Noise,
                            }
                        }
                    }
                    None => board.outcome(ch, jammed),
                };
                match fb {
                    Feedback::Silence => slot_stats.heard_silence += 1,
                    Feedback::Message(_) => slot_stats.heard_message += 1,
                    Feedback::Noise => slot_stats.heard_noise += 1,
                }
                let node = &mut nodes[nid as usize];
                let was_informed = node.is_informed();
                node.on_feedback(&prof, fb);
                if !was_informed && node.is_informed() {
                    informed_at[nid as usize] = Some(slot);
                    informed_count += 1;
                    observer.on_informed(nid, slot);
                }
                if multi {
                    credit_mask_gains(
                        nodes[nid as usize].informed_mask() & msg_all,
                        nid,
                        slot,
                        informed_target,
                        &mut msg_mask,
                        &mut msg_informed_count,
                        &mut msg_informed_at,
                    );
                }
            }
            totals.broadcasts += slot_stats.broadcasts;
            totals.listens += slot_stats.listens;
            totals.heard_silence += slot_stats.heard_silence;
            totals.heard_message += slot_stats.heard_message;
            totals.heard_noise += slot_stats.heard_noise;
            totals.jammed += slot_stats.jammed;
            observer.on_slot(slot, &slot_stats);

            // Record the band activity for the adaptive adversary's next
            // call — skipped entirely for strategies that never read it.
            if observes {
                next_obs.clear();
                next_obs.channels = prof.channels;
                board.busy_channels(&mut next_obs.busy);
                std::mem::swap(&mut prev_obs, &mut next_obs);
            }

            tel.slots_stepped += 1;
            slot += 1;
        }

        // --- 4. Segment boundary ---------------------------------------------
        if slot == seg_end {
            let mut any_halt = false;
            for &nid in &active {
                let node = &mut nodes[nid as usize];
                let was_informed = node.is_informed();
                let decision = node.on_boundary(&prof);
                let now_informed = node.is_informed();
                if !was_informed && now_informed {
                    // Deferred status change (MultiCastAdv step-two check).
                    informed_at[nid as usize] = Some(slot - 1);
                    informed_count += 1;
                    observer.on_informed(nid, slot - 1);
                }
                if multi {
                    credit_mask_gains(
                        nodes[nid as usize].informed_mask() & msg_all,
                        nid,
                        slot - 1,
                        informed_target,
                        &mut msg_mask,
                        &mut msg_informed_count,
                        &mut msg_informed_at,
                    );
                }
                if decision == BoundaryDecision::Halt {
                    halted_at[nid as usize] = Some(slot - 1);
                    halted_informed[nid as usize] = now_informed;
                    any_halt = true;
                    observer.on_halted(nid, slot - 1);
                    if multi {
                        let mut bits = msg_mask[nid as usize];
                        while bits != 0 {
                            msg_halted_knowing[bits.trailing_zeros() as usize] += 1;
                            bits &= bits - 1;
                        }
                    }
                }
            }
            if any_halt {
                active.retain(|&nid| halted_at[nid as usize].is_none());
            }
            observer.on_boundary(slot, &prof, active.len() as u32, informed_count);
            // Pending schedule events keep the segment clock running even
            // when every node is down — a RecoverNodes may still re-admit.
            if (!active.is_empty() || next_event_idx < sched.len()) && slot < cfg.max_slots {
                prof = checked_profile(protocol.segment(slot), n);
                seg_start = slot;
                seg_end = slot.saturating_add(prof.seg_len);
                if sparse {
                    // Fresh stream per segment: probabilities and the active
                    // set are constant within a segment, not across them.
                    // No stream while every node is down (dead air).
                    stream = (!active.is_empty()).then(|| {
                        TwoClassRoundStream::new(&mut engine_rng, active.len(), prof.p1, prof.p2)
                    });
                    ff_active = fast_forward
                        && (active.is_empty()
                            || ff_worth_it(&prof, active.len(), cfg.max_slots - slot));
                    if fast_forward && !ff_active {
                        tel.ff_gated_segments += 1;
                    }
                }
            }
        }
        // ==== TELEMETRY HOT SECTION: END ===================================
    }

    // Flush the crashed-node-slot integral up to the final slot.
    tel.crashed_node_slots += u64::from(crashed_count) * (slot - crash_from);

    if let Some(t) = t_loop {
        let loop_nanos = t.elapsed().as_nanos() as u64;
        tel.phases.fast_forward = ff_nanos;
        tel.phases.slot_loop = loop_nanos.saturating_sub(ff_nanos);
    }
    let t_finalize = cfg.time_phases.then(Instant::now);
    tel.rng_engine_draws = engine_rng.draws();
    tel.rng_node_draws = node_rngs.iter().map(Xoshiro256::draws).sum();
    tel.observer_events = observer.events;

    let nodes_out: Vec<NodeOutcome> = (0..n as usize)
        .map(|i| NodeOutcome {
            id: i as u32,
            informed_at: informed_at[i],
            halted_at: halted_at[i],
            listen_cost: listen_cost[i],
            broadcast_cost: bcast_cost[i],
            halted_informed: halted_informed[i],
            extra: node_extra(&nodes[i]),
        })
        .collect();

    let all_informed = informed_count >= informed_target;
    let all_informed_at = if all_informed {
        informed_at.iter().map(|x| x.unwrap_or(0)).max()
    } else {
        None
    };
    let messages: Vec<MessageOutcome> = if multi {
        (0..tracked)
            .map(|j| MessageOutcome {
                msg: j as u32,
                informed_count: msg_informed_count[j],
                all_informed_at: msg_informed_at[j],
                halted_knowing: msg_halted_knowing[j],
            })
            .collect()
    } else {
        // Single-message runs mirror the run-level counters.
        vec![MessageOutcome {
            msg: 0,
            informed_count,
            all_informed_at,
            halted_knowing: halted_informed.iter().filter(|&&b| b).count() as u32,
        }]
    };
    let survivors = informed_target.saturating_sub(crashed_reachable);
    let survivors_informed = informed_count.saturating_sub(crashed_informed);
    let outcome = RunOutcome {
        slots: slot,
        // A run with standing crashes has not "all halted" in the classical
        // sense; the survivor-relative verdict lives in the fields below.
        all_halted: active.is_empty() && crashed_count == 0,
        all_informed,
        all_informed_at,
        reachable: informed_target,
        eve_spent,
        totals,
        messages,
        nodes: nodes_out,
        timeline,
        crashed: crashed_count,
        survivors,
        survivors_informed,
        survivors_all_informed: survivors_informed >= survivors,
        survivors_all_halted: active.is_empty(),
    };
    if let Some(t) = t_finalize {
        tel.phases.finalize = t.elapsed().as_nanos() as u64;
    }
    (outcome, tel)
}

fn node_extra<N: ProtocolNode>(node: &N) -> NodeExtra {
    node.extra()
}

/// Fold a node's newly-learned message bits into the per-message counters
/// (multi-message runs only).
#[allow(clippy::too_many_arguments)]
fn credit_mask_gains(
    new_mask: u64,
    nid: u32,
    slot: u64,
    informed_target: u32,
    msg_mask: &mut [u64],
    msg_informed_count: &mut [u32],
    msg_informed_at: &mut [Option<u64>],
) {
    let mut gained = new_mask & !msg_mask[nid as usize];
    if gained == 0 {
        return;
    }
    msg_mask[nid as usize] |= gained;
    while gained != 0 {
        let j = gained.trailing_zeros() as usize;
        msg_informed_count[j] += 1;
        if msg_informed_count[j] >= informed_target && msg_informed_at[j].is_none() {
            msg_informed_at[j] = Some(slot);
        }
        gained &= gained - 1;
    }
}

/// Minimum run length (in slots) for the fast-forward machinery to be worth
/// engaging at all: shorter runs cannot amortize the span bookkeeping.
const FF_MIN_RUN_SLOTS: u64 = 256;

/// Minimum probability of an idle round for fast-forward to pay. At
/// `q = (1 - p1 - p2)^actors` below this, fewer than ~1 round in 64 is
/// empty, so `empty_rounds_ahead` almost never finds a span and the branch
/// is pure overhead. Kept far below the sparse-regime values the paper's
/// protocols run at (e.g. `q ≈ 0.72` at `p1 = p2 = 0.02, n = 8`), so real
/// sweep cells always keep their spans.
const FF_MIN_EMPTY_PROB: f64 = 1.0 / 64.0;

/// Minimum *expected slots skipped per round start*, `q/(1-q) * round_len`,
/// for the span machinery to beat the plain loop. Each realized span costs
/// one budget span-charge plus span telemetry — roughly two stepped empty
/// slots' worth of work — so segments whose mean idle run is a fraction of
/// a slot (e.g. `q ≈ 0.17`: 37k spans of mean 1.2 slots on the
/// gilbert-elliott `n = 64` cell) lose a few percent to bookkeeping. The
/// threshold keeps the measured winners (`q ≈ 0.37`, mean span 1.6, +4–15%)
/// and gates the measured losers.
const FF_MIN_EXPECTED_SKIP_SLOTS: f64 = 0.3;

/// Heuristic fast-forward gate (see the constants above). `true` means the
/// segment's round-start path should look for idle spans to skip; `false`
/// falls back to the plain slot loop. Pure function of the segment profile,
/// the actor-pool size, and the slots left before the cap — no RNG, so
/// gating a segment never perturbs the run's byte stream.
pub(crate) fn ff_worth_it(prof: &SlotProfile, actors: usize, slots_left: u64) -> bool {
    if slots_left < FF_MIN_RUN_SLOTS {
        return false;
    }
    let total = prof.p1 + prof.p2;
    if total >= 1.0 {
        return false; // every round has an actor; no idle span can exist
    }
    if total <= 0.0 {
        return true; // every round is empty; fast-forward is the whole run
    }
    let q = (1.0 - total).powi(actors.max(1) as i32);
    q >= FF_MIN_EMPTY_PROB && q / (1.0 - q) * prof.round_len as f64 >= FF_MIN_EXPECTED_SKIP_SLOTS
}

/// Validate the protocol's segment contract once per segment.
pub(crate) fn checked_profile(prof: SlotProfile, _n: u32) -> SlotProfile {
    assert!(prof.seg_len >= 1, "segment must contain at least one slot");
    assert!(prof.round_len >= 1, "round_len must be at least 1");
    assert!(
        prof.seg_len.is_multiple_of(prof.round_len as u64),
        "segment length {} must be a multiple of round length {}",
        prof.seg_len,
        prof.round_len
    );
    assert!(prof.channels >= 1, "at least one channel required");
    assert!(
        prof.p1 >= 0.0 && prof.p2 >= 0.0 && prof.p1 + prof.p2 <= 1.0 + 1e-12,
        "invalid action probabilities p1={} p2={}",
        prof.p1,
        prof.p2
    );
    if prof.round_len == 1 {
        assert_eq!(
            prof.virt_channels, prof.channels,
            "without round simulation, virtual channels must equal physical"
        );
    } else {
        assert_eq!(
            prof.virt_channels,
            prof.channels * prof.round_len as u64,
            "round simulation requires virt_channels == channels * round_len"
        );
    }
    prof
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Payload;
    use crate::protocol::NoAdversary;
    use crate::trace::{RecordingObserver, TraceEvent};

    /// A minimal test protocol: a single segment schedule where the source
    /// broadcasts with p2 and everyone else listens with p1 on `channels`
    /// channels; nodes halt at a boundary once informed.
    struct Toy {
        n: u32,
        channels: u64,
        seg_len: u64,
    }

    struct ToyNode {
        informed: bool,
        is_source: bool,
        heard_noise: u64,
    }

    impl Protocol for Toy {
        type Node = ToyNode;

        fn num_nodes(&self) -> u32 {
            self.n
        }

        fn segment(&mut self, _start: u64) -> SlotProfile {
            SlotProfile {
                p1: 0.5,
                p2: 0.5,
                channels: self.channels,
                virt_channels: self.channels,
                round_len: 1,
                seg_len: self.seg_len,
                seg_major: 0,
                seg_minor: 0,
                step: 0,
            }
        }

        fn make_node(&self, _id: u32, is_source: bool) -> ToyNode {
            ToyNode {
                informed: is_source,
                is_source,
                heard_noise: 0,
            }
        }
    }

    impl ProtocolNode for ToyNode {
        fn on_selected(&mut self, prof: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
            let ch = rng.gen_range(prof.virt_channels);
            match coin {
                Coin::One if !self.is_source => Action::Listen { ch },
                Coin::Two if self.informed => Action::Broadcast {
                    ch,
                    payload: Payload::Data,
                },
                _ => Action::Idle,
            }
        }

        fn on_feedback(&mut self, _prof: &SlotProfile, fb: Feedback) {
            match fb {
                Feedback::Message(Payload::Data) => self.informed = true,
                Feedback::Noise => self.heard_noise += 1,
                _ => {}
            }
        }

        fn on_boundary(&mut self, _prof: &SlotProfile) -> BoundaryDecision {
            if self.informed {
                BoundaryDecision::Halt
            } else {
                BoundaryDecision::Continue
            }
        }

        fn is_informed(&self) -> bool {
            self.informed
        }
    }

    fn toy(n: u32) -> Toy {
        Toy {
            n,
            channels: (n as u64 / 2).max(1),
            seg_len: 64,
        }
    }

    #[test]
    fn toy_broadcast_completes_without_adversary() {
        let mut proto = toy(16);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(100_000))
            .run(1);
        assert!(out.all_informed, "everyone should learn m: {out:?}");
        assert!(out.all_halted);
        assert_eq!(out.safety_violations(), 0);
        assert_eq!(out.eve_spent, 0);
        // Single-message protocols carry exactly one mirrored entry.
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].informed_count, 16);
        assert_eq!(out.messages[0].all_informed_at, out.all_informed_at);
        assert_eq!(out.messages[0].halted_knowing, 16);
    }

    /// The explicit adversary seats and the default are interchangeable
    /// when Eve never spends: NoAdversary (oblivious), its adaptive
    /// adapter, and Eve::Silent must be byte-identical.
    #[test]
    fn eve_seats_are_byte_identical_for_a_silent_adversary() {
        use crate::adaptive::ObliviousAsAdaptive;
        let base = {
            let mut proto = toy(16);
            Simulation::new(&mut proto)
                .config(EngineConfig::capped(100_000))
                .run(1)
        };
        let oblivious = {
            let mut proto = toy(16);
            Simulation::new(&mut proto)
                .adversary(&mut NoAdversary)
                .config(EngineConfig::capped(100_000))
                .run(1)
        };
        let adaptive = {
            let mut proto = toy(16);
            let mut inner = NoAdversary;
            Simulation::new(&mut proto)
                .adaptive(&mut ObliviousAsAdaptive(&mut inner))
                .config(EngineConfig::capped(100_000))
                .run(1)
        };
        assert_eq!(base, oblivious);
        assert_eq!(base, adaptive);
    }

    #[test]
    fn energy_ledger_matches_totals() {
        let mut proto = toy(16);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(100_000))
            .run(2);
        let listens: u64 = out.nodes.iter().map(|n| n.listen_cost).sum();
        let bcasts: u64 = out.nodes.iter().map(|n| n.broadcast_cost).sum();
        assert_eq!(listens, out.totals.listens);
        assert_eq!(bcasts, out.totals.broadcasts);
        let heard = out.totals.heard_silence + out.totals.heard_message + out.totals.heard_noise;
        assert_eq!(
            heard, out.totals.listens,
            "every listen yields exactly one feedback"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let collect = |seed: u64| {
            let mut proto = toy(32);
            let out = Simulation::new(&mut proto)
                .config(EngineConfig::capped(100_000))
                .run(seed);
            (out.slots, out.max_cost(), out.eve_spent, out.totals)
        };
        assert_eq!(collect(7), collect(7));
        // Different seeds should (almost surely) differ somewhere.
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn source_is_informed_from_slot_zero() {
        let mut proto = toy(8);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(100_000))
            .run(3);
        assert_eq!(out.nodes[0].informed_at, Some(0));
    }

    /// A full-band jammer with a huge budget must stop the toy protocol
    /// entirely: everyone hears only noise.
    struct JamAll {
        t: u64,
    }
    impl Adversary for JamAll {
        fn jam(&mut self, _slot: u64, _channels: u64) -> JamSet {
            JamSet::All
        }
        fn budget(&self) -> u64 {
            self.t
        }
    }

    #[test]
    fn full_jam_blocks_progress_and_is_charged() {
        let mut proto = toy(16);
        let cap = 1000;
        let out = Simulation::new(&mut proto)
            .adversary(&mut JamAll { t: u64::MAX })
            .config(EngineConfig::capped(cap))
            .run(4);
        assert!(
            !out.all_informed,
            "jamming every channel must block broadcast"
        );
        assert_eq!(out.slots, cap);
        assert_eq!(out.eve_spent, cap * 8, "8 channels jammed per slot");
        assert_eq!(out.totals.heard_message, 0);
        assert_eq!(out.totals.heard_silence, 0);
    }

    #[test]
    fn eve_budget_is_enforced() {
        let mut proto = toy(16);
        let budget = 50;
        let out = Simulation::new(&mut proto)
            .adversary(&mut JamAll { t: budget })
            .config(EngineConfig::capped(100_000))
            .run(5);
        assert!(out.eve_spent <= budget);
        // Once she is bankrupt the toy protocol finishes.
        assert!(out.all_informed);
    }

    #[test]
    fn stop_when_all_informed_halts_early() {
        let mut proto = Toy {
            n: 8,
            channels: 4,
            seg_len: u32::MAX as u64,
        };
        let cfg = EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(1_000_000)
        };
        let out = Simulation::new(&mut proto).config(cfg).run(6);
        assert!(out.all_informed);
        assert!(out.slots < 1_000_000, "should stop well before the cap");
        assert!(!out.all_halted, "nodes were still active when we stopped");
    }

    #[test]
    fn observer_sees_informed_and_halt_events() {
        let mut proto = toy(8);
        let mut obs = RecordingObserver::new();
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(100_000))
            .observer(&mut obs)
            .run(9);
        assert_eq!(
            obs.informed_slots().len(),
            7,
            "7 non-source nodes get informed"
        );
        assert_eq!(obs.halted_slots().len(), 8);
        assert!(out.all_halted);
        // Growth curve is monotone in both coordinates.
        for w in obs.growth.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn dense_and_sparse_sampling_agree_statistically() {
        let mean_slots = |sampling: Sampling| {
            let trials = 40;
            let mut total = 0u64;
            for seed in 0..trials {
                let mut proto = toy(32);
                let cfg = EngineConfig {
                    sampling,
                    ..EngineConfig::capped(100_000)
                };
                let out = Simulation::new(&mut proto).config(cfg).run(1000 + seed);
                assert!(out.all_halted);
                total += out.slots;
            }
            total as f64 / trials as f64
        };
        let sparse = mean_slots(Sampling::Sparse);
        let dense = mean_slots(Sampling::DensePerNode);
        let rel = (sparse - dense).abs() / dense;
        assert!(
            rel < 0.25,
            "sparse {sparse} vs dense {dense} diverge by {rel:.2}"
        );
    }

    /// A sparse toy: acts with tiny probability so most rounds are empty and
    /// the fast path engages.
    struct SparseToy {
        n: u32,
        seg_len: u64,
    }
    impl Protocol for SparseToy {
        type Node = ToyNode;
        fn num_nodes(&self) -> u32 {
            self.n
        }
        fn segment(&mut self, _start: u64) -> SlotProfile {
            SlotProfile {
                p1: 0.01,
                p2: 0.01,
                channels: 4,
                virt_channels: 4,
                round_len: 1,
                seg_len: self.seg_len,
                seg_major: 0,
                seg_minor: 0,
                step: 0,
            }
        }
        fn make_node(&self, _id: u32, is_source: bool) -> ToyNode {
            ToyNode {
                informed: is_source,
                is_source,
                heard_noise: 0,
            }
        }
    }

    /// Fast-forward on vs off must agree byte-for-byte for any adversary
    /// whose `jam_span` is exact — here the default per-slot loop of a
    /// stateful custom jammer, the strongest case.
    #[test]
    fn fast_forward_matches_slot_by_slot_reference() {
        struct EveryThird {
            calls: u64,
        }
        impl Adversary for EveryThird {
            fn jam(&mut self, slot: u64, _channels: u64) -> JamSet {
                self.calls += 1;
                if slot.is_multiple_of(3) {
                    JamSet::Prefix(2)
                } else {
                    JamSet::Empty
                }
            }
            fn budget(&self) -> u64 {
                5_000
            }
        }
        for seed in [1u64, 2, 3, 4] {
            let run_mode = |fast_forward: bool| {
                let mut proto = SparseToy {
                    n: 16,
                    seg_len: 256,
                };
                let cfg = EngineConfig {
                    fast_forward,
                    ..EngineConfig::capped(50_000)
                };
                Simulation::new(&mut proto)
                    .adversary(&mut EveryThird { calls: 0 })
                    .config(cfg)
                    .run(seed)
            };
            let fast = run_mode(true);
            let slow = run_mode(false);
            // Byte-identical outcomes — whether or not the toy completed
            // within the cap — including Eve's exact spend.
            assert_eq!(fast, slow, "seed {seed}");
            assert!(fast.eve_spent > 0, "the jammer must have been charged");
        }
    }

    #[test]
    fn fast_forward_emits_idle_span_events() {
        struct SpanCounter {
            spans: u64,
            span_slots: u64,
            slots: u64,
        }
        impl Observer for SpanCounter {
            fn on_slot(&mut self, _slot: u64, _stats: &SlotStats) {
                self.slots += 1;
            }
            fn on_idle_span(&mut self, _slot: u64, len: u64, _jammed: u64) {
                self.spans += 1;
                self.span_slots += len;
            }
        }
        let mut proto = SparseToy {
            n: 16,
            seg_len: 256,
        };
        let mut obs = SpanCounter {
            spans: 0,
            span_slots: 0,
            slots: 0,
        };
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(50_000))
            .observer(&mut obs)
            .run(5);
        assert!(obs.spans > 0, "sparse toy must fast-forward");
        assert_eq!(
            obs.slots + obs.span_slots,
            out.slots,
            "executed + skipped slots must cover the run"
        );
        assert!(
            obs.span_slots > out.slots / 2,
            "most slots should be skipped: {} of {}",
            obs.span_slots,
            out.slots
        );
    }

    #[test]
    #[should_panic(expected = "at least a source and one receiver")]
    fn rejects_single_node_network() {
        let mut proto = toy(1);
        Simulation::new(&mut proto).run(0);
    }

    /// A relay toy for multi-hop runs: like [`Toy`] but nodes never halt
    /// (informed nodes keep re-broadcasting), so the message can propagate
    /// hop by hop; run with `stop_when_all_informed`.
    struct RelayToy {
        n: u32,
        channels: u64,
    }
    impl Protocol for RelayToy {
        type Node = RelayNode;
        fn num_nodes(&self) -> u32 {
            self.n
        }
        fn segment(&mut self, _s: u64) -> SlotProfile {
            SlotProfile {
                p1: 0.5,
                p2: 0.5,
                channels: self.channels,
                virt_channels: self.channels,
                round_len: 1,
                seg_len: 1 << 40,
                seg_major: 0,
                seg_minor: 0,
                step: 0,
            }
        }
        fn make_node(&self, _id: u32, is_source: bool) -> RelayNode {
            RelayNode {
                informed: is_source,
            }
        }
    }
    struct RelayNode {
        informed: bool,
    }
    impl ProtocolNode for RelayNode {
        fn on_selected(&mut self, prof: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
            let ch = rng.gen_range(prof.virt_channels);
            match coin {
                Coin::One if !self.informed => Action::Listen { ch },
                Coin::Two if self.informed => Action::Broadcast {
                    ch,
                    payload: Payload::Data,
                },
                _ => Action::Idle,
            }
        }
        fn on_feedback(&mut self, _p: &SlotProfile, fb: Feedback) {
            if fb == Feedback::Message(Payload::Data) {
                self.informed = true;
            }
        }
        fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
            BoundaryDecision::Continue
        }
        fn is_informed(&self) -> bool {
            self.informed
        }
    }

    fn informed_cfg() -> EngineConfig {
        EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(2_000_000)
        }
    }

    #[test]
    fn complete_topology_is_byte_identical_to_single_hop() {
        use crate::topology::Topology;
        for seed in [1u64, 2, 3] {
            let single = {
                let mut proto = toy(16);
                Simulation::new(&mut proto)
                    .config(EngineConfig::capped(100_000))
                    .run(seed)
            };
            let topo = {
                let mut proto = toy(16);
                Simulation::new(&mut proto)
                    .topology(&Topology::Complete)
                    .config(EngineConfig::capped(100_000))
                    .run(seed)
            };
            assert_eq!(single, topo, "seed {seed}");
        }
    }

    #[test]
    fn line_topology_propagates_hop_by_hop() {
        use crate::topology::Topology;
        let mut proto = RelayToy { n: 8, channels: 2 };
        let mut obs = RecordingObserver::new();
        let out = Simulation::new(&mut proto)
            .topology(&Topology::Line)
            .config(informed_cfg())
            .observer(&mut obs)
            .run(7);
        assert!(out.all_informed, "{out:?}");
        assert_eq!(out.reachable, 8);
        // On a line, node k can only be informed after node k-1 (its only
        // path to the source passes through it).
        let mut informed_slot = [u64::MAX; 8];
        informed_slot[0] = 0;
        for e in &obs.events {
            if let TraceEvent::Informed { node, slot } = e {
                informed_slot[*node as usize] = *slot;
            }
        }
        for k in 2..8 {
            assert!(
                informed_slot[k] >= informed_slot[k - 1],
                "node {k} informed before its upstream neighbor"
            );
        }
        // Strictly multi-hop: the farthest node cannot learn m in slot 0.
        assert!(informed_slot[7] > informed_slot[1]);
    }

    #[test]
    fn disconnected_topology_completes_on_the_reachable_component() {
        use crate::topology::{Topology, TopologyView};
        // A near-zero radius isolates most nodes from the source.
        let topo = Topology::RandomGeometric {
            radius: 0.05,
            seed: 13,
        };
        let view = TopologyView::build(&topo, 16);
        assert!(view.reachable_count() < 16, "radius chosen to disconnect");
        let mut proto = RelayToy { n: 16, channels: 4 };
        let out = Simulation::new(&mut proto)
            .topology(&topo)
            .config(informed_cfg())
            .run(5);
        assert!(
            out.all_informed,
            "reachable component must complete: {out:?}"
        );
        assert_eq!(out.reachable, view.reachable_count());
        assert_eq!(out.informed_count() as u32, view.reachable_count());
        for node in &out.nodes {
            assert_eq!(
                node.informed_at.is_some(),
                view.is_reachable(node.id),
                "informed set must be exactly the reachable component"
            );
        }
    }

    #[test]
    fn dynamic_churn_still_delivers() {
        use crate::topology::Topology;
        let topo = Topology::Dynamic {
            base: Box::new(Topology::Line),
            p_down: 0.5,
            seed: 21,
        };
        let mut proto = RelayToy { n: 8, channels: 2 };
        let out = Simulation::new(&mut proto)
            .topology(&topo)
            .config(informed_cfg())
            .run(9);
        assert!(
            out.all_informed,
            "churned line must still complete: {out:?}"
        );
        assert_eq!(out.reachable, 8, "reachability is judged on the base graph");
    }

    /// Round simulation: virtual channels map to (sub-slot, physical channel).
    struct RoundToy;
    struct RoundNode {
        informed: bool,
        got: Vec<Feedback>,
    }

    impl Protocol for RoundToy {
        type Node = RoundNode;
        fn num_nodes(&self) -> u32 {
            2
        }
        fn segment(&mut self, _s: u64) -> SlotProfile {
            SlotProfile {
                p1: 1.0,
                p2: 0.0,
                channels: 2,
                virt_channels: 8,
                round_len: 4,
                seg_len: 400,
                seg_major: 0,
                seg_minor: 0,
                step: 0,
            }
        }
        fn make_node(&self, _id: u32, is_source: bool) -> RoundNode {
            RoundNode {
                informed: is_source,
                got: Vec::new(),
            }
        }
    }

    impl ProtocolNode for RoundNode {
        fn on_selected(&mut self, prof: &SlotProfile, _c: Coin, rng: &mut Xoshiro256) -> Action {
            let ch = rng.gen_range(prof.virt_channels);
            if self.informed {
                Action::Broadcast {
                    ch,
                    payload: Payload::Data,
                }
            } else {
                Action::Listen { ch }
            }
        }
        fn on_feedback(&mut self, _p: &SlotProfile, fb: Feedback) {
            self.got.push(fb);
            if fb == Feedback::Message(Payload::Data) {
                self.informed = true;
            }
        }
        fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
            if self.informed {
                BoundaryDecision::Halt
            } else {
                BoundaryDecision::Continue
            }
        }
        fn is_informed(&self) -> bool {
            self.informed
        }
    }

    /// A k = 3 multi-message toy: the source holds all three payloads and
    /// broadcasts a uniformly random one; everyone else listens until it
    /// holds all three. Exercises the engine's per-message tracking.
    struct MsgToy {
        n: u32,
    }
    struct MsgNode {
        mask: u64,
        is_source: bool,
    }
    impl Protocol for MsgToy {
        type Node = MsgNode;
        fn num_nodes(&self) -> u32 {
            self.n
        }
        fn segment(&mut self, _s: u64) -> SlotProfile {
            SlotProfile {
                p1: 0.5,
                p2: 0.5,
                channels: 2,
                virt_channels: 2,
                round_len: 1,
                seg_len: 1 << 40,
                seg_major: 0,
                seg_minor: 0,
                step: 0,
            }
        }
        fn make_node(&self, _id: u32, is_source: bool) -> MsgNode {
            MsgNode {
                mask: if is_source { 0b111 } else { 0 },
                is_source,
            }
        }
        fn num_messages(&self) -> u32 {
            3
        }
    }
    impl ProtocolNode for MsgNode {
        fn on_selected(&mut self, prof: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
            let ch = rng.gen_range(prof.virt_channels);
            match coin {
                Coin::One if self.mask != 0b111 => Action::Listen { ch },
                Coin::Two if self.is_source => Action::Broadcast {
                    ch,
                    payload: Payload::Msg(rng.gen_range(3) as u16),
                },
                _ => Action::Idle,
            }
        }
        fn on_feedback(&mut self, _p: &SlotProfile, fb: Feedback) {
            if let Feedback::Message(Payload::Msg(j)) = fb {
                self.mask |= 1 << j;
            }
        }
        fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
            BoundaryDecision::Continue
        }
        fn is_informed(&self) -> bool {
            self.mask == 0b111
        }
        fn informed_mask(&self) -> u64 {
            self.mask
        }
    }

    #[test]
    fn multi_message_tracking_records_per_message_completion() {
        let mut proto = MsgToy { n: 8 };
        let cfg = EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(1_000_000)
        };
        let out = Simulation::new(&mut proto).config(cfg).run(13);
        assert!(out.all_informed, "{out:?}");
        assert_eq!(out.messages.len(), 3);
        for (j, m) in out.messages.iter().enumerate() {
            assert_eq!(m.msg, j as u32);
            assert_eq!(m.informed_count, 8, "message {j} must reach everyone");
            assert!(m.all_informed_at.is_some());
            assert_eq!(m.halted_knowing, 0, "nobody ever halts");
        }
        // The run completes exactly when the last message completes.
        let last = out
            .messages
            .iter()
            .map(|m| m.all_informed_at.unwrap())
            .max();
        assert_eq!(last, out.all_informed_at);
        // A node's informed_at is when it learned its *last* message.
        assert!(out.nodes.iter().all(|n| n.informed_at.is_some()));
    }

    #[test]
    fn round_simulation_delivers_messages() {
        // With 8 virtual channels over 2 physical channels and 4-slot rounds,
        // source and listener meet when they pick the same virtual channel
        // (prob 1/8 per round) — should happen quickly.
        let mut proto = RoundToy;
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(100_000))
            .run(11);
        assert!(
            out.all_informed,
            "round-mapped rendezvous must succeed: {out:?}"
        );
        // Each node acts at most once per round (energy ≤ rounds executed).
        let rounds = out.slots.div_ceil(4);
        for n in &out.nodes {
            assert!(
                n.cost() <= rounds,
                "cost {} exceeds rounds {rounds}",
                n.cost()
            );
        }
    }

    // ---- nemesis layer (WorldSchedule) ------------------------------------

    use crate::schedule::{WorldEvent, WorldSchedule};

    // Late-landing events need live broadcasters: [`RelayToy`] never halts,
    // so runs pair it with `stop_when_all_informed` (see `informed_cfg`).

    #[test]
    fn empty_schedule_is_byte_identical_to_unscheduled() {
        for seed in [1u64, 7, 42] {
            let plain = {
                let mut proto = toy(16);
                Simulation::new(&mut proto)
                    .config(EngineConfig::capped(100_000))
                    .run_with_telemetry(seed)
            };
            let empty = WorldSchedule::new();
            let scheduled = {
                let mut proto = toy(16);
                Simulation::new(&mut proto)
                    .schedule(&empty)
                    .config(EngineConfig::capped(100_000))
                    .run_with_telemetry(seed)
            };
            assert_eq!(plain.0, scheduled.0, "outcome drift at seed {seed}");
            assert_eq!(plain.1, scheduled.1, "telemetry drift at seed {seed}");
        }
    }

    #[test]
    fn crashed_nodes_degrade_gracefully() {
        let sched = WorldSchedule::new().at(
            0,
            WorldEvent::CrashNodes {
                nodes: vec![12, 13, 14, 15],
            },
        );
        let mut proto = toy(16);
        let (out, tel) = Simulation::new(&mut proto)
            .schedule(&sched)
            .config(EngineConfig::capped(100_000))
            .run_with_telemetry(9);
        assert_eq!(out.crashed, 4);
        assert_eq!(out.survivors, 12);
        assert!(!out.all_informed, "crashed nodes can never learn");
        assert!(
            out.survivors_all_informed,
            "every survivor should learn: {out:?}"
        );
        assert!(out.survivors_all_halted);
        assert!(!out.all_halted, "standing crashes veto the classic verdict");
        assert_eq!(out.safety_violations(), 0);
        for nid in 12..16 {
            assert_eq!(out.nodes[nid].informed_at, None);
            assert_eq!(out.nodes[nid].halted_at, None);
        }
        assert_eq!(out.timeline.len(), 1);
        assert_eq!(out.timeline[0].kind, "crash");
        assert_eq!(out.timeline[0].applied_at, 0);
        assert_eq!(tel.schedule_events, 1);
        assert_eq!(tel.crashed_node_slots, 4 * out.slots);
        assert_eq!(tel.slots_total(), out.slots);
    }

    #[test]
    fn crash_all_then_recover_rides_out_dead_air() {
        // Every node (source included) is down from slot 0 to 640; the run
        // must coast through the dead air without panicking and still
        // complete after the recovery.
        let sched = WorldSchedule::new()
            .at(
                0,
                WorldEvent::CrashNodes {
                    nodes: (0..16).collect(),
                },
            )
            .at(
                640,
                WorldEvent::RecoverNodes {
                    nodes: (0..16).collect(),
                },
            );
        let mut proto = toy(16);
        let (out, tel) = Simulation::new(&mut proto)
            .schedule(&sched)
            .config(EngineConfig::capped(100_000))
            .run_with_telemetry(3);
        assert!(out.all_informed, "{out:?}");
        assert!(out.all_halted);
        assert_eq!(out.crashed, 0);
        assert_eq!(out.survivors, 16);
        assert_eq!(out.timeline.len(), 2);
        assert_eq!(out.timeline[0].kind, "crash");
        assert_eq!(out.timeline[1].kind, "recover");
        assert_eq!(out.timeline[1].applied_at, 640);
        assert_eq!(tel.schedule_events, 2);
        assert_eq!(tel.crashed_node_slots, 16 * 640);
        assert_eq!(tel.slots_total(), out.slots);
    }

    #[test]
    fn partition_blocks_cross_group_delivery() {
        let sched = WorldSchedule::new().at(
            0,
            WorldEvent::Partition {
                groups: vec![(0..8).collect(), (8..16).collect()],
            },
        );
        let mut proto = toy(16);
        let out = Simulation::new(&mut proto)
            .schedule(&sched)
            .config(EngineConfig::capped(20_000))
            .run(5);
        assert!(!out.all_informed);
        for nid in 8..16 {
            assert_eq!(
                out.nodes[nid].informed_at, None,
                "node {nid} is cut off from the source's group"
            );
        }
        assert!(
            out.nodes[1..8].iter().all(|n| n.informed_at.is_some()),
            "the source's own group still completes: {out:?}"
        );
    }

    #[test]
    fn heal_restores_cross_group_delivery() {
        let sched = WorldSchedule::new()
            .at(
                0,
                WorldEvent::Partition {
                    groups: vec![(0..8).collect(), (8..16).collect()],
                },
            )
            .at(2048, WorldEvent::Heal);
        let mut proto = RelayToy { n: 16, channels: 4 };
        let out = Simulation::new(&mut proto)
            .schedule(&sched)
            .config(informed_cfg())
            .run(5);
        assert!(out.all_informed, "{out:?}");
        assert_eq!(out.timeline.len(), 2);
        assert_eq!(out.timeline[1].kind, "heal");
        // The far side could only start learning after the heal landed.
        let earliest_far = (8..16).filter_map(|i| out.nodes[i].informed_at).min();
        assert!(earliest_far.is_some_and(|s| s >= 2048), "{earliest_far:?}");
    }

    #[test]
    fn swap_eve_replaces_the_adversary_and_resets_her_budget() {
        // A bottomless full-band jammer blocks all progress until the swap
        // at slot 1024 seats a silent Eve; the run then completes. Her spend
        // is exactly 4 channels × 1024 slots, span-charges included.
        let sched = WorldSchedule::new().at(1024, WorldEvent::SwapEve);
        let mut proto = RelayToy { n: 16, channels: 4 };
        let mut jam = JamAll { t: u64::MAX };
        let out = Simulation::new(&mut proto)
            .adversary(&mut jam)
            .schedule(&sched)
            .swap_eve(Eve::Silent)
            .config(informed_cfg())
            .run(4);
        assert!(out.all_informed, "{out:?}");
        assert_eq!(out.eve_spent, 1024 * 4);
        assert!(out.all_informed_at.is_some_and(|s| s >= 1024));
        assert_eq!(out.timeline.len(), 1);
        assert_eq!(out.timeline[0].kind, "swap-eve");
        assert_eq!(out.timeline[0].applied_at, 1024);
    }

    #[test]
    fn swap_eve_with_empty_queue_is_a_recorded_noop() {
        // An applied swap with no queued Eve changes nothing but the
        // timeline; an event past the run's natural end is never applied.
        let plain = {
            let mut proto = toy(16);
            Simulation::new(&mut proto)
                .config(EngineConfig::capped(100_000))
                .run(1)
        };
        let early = WorldSchedule::new().at(16, WorldEvent::SwapEve);
        let mut proto = toy(16);
        let out = Simulation::new(&mut proto)
            .schedule(&early)
            .config(EngineConfig::capped(100_000))
            .run(1);
        assert_eq!(out.slots, plain.slots);
        assert_eq!(out.nodes, plain.nodes);
        assert_eq!(out.totals, plain.totals);
        assert_eq!(out.timeline.len(), 1);

        // The toy run all-halts around slot 64; with no crashed nodes a
        // pending slot-100k event cannot change anything, so the run ends
        // on schedule and leaves no marker.
        let late = WorldSchedule::new().at(100_000, WorldEvent::SwapEve);
        let mut proto = toy(16);
        let out = Simulation::new(&mut proto)
            .schedule(&late)
            .config(EngineConfig::capped(200_000))
            .run(1);
        assert_eq!(out.slots, plain.slots);
        assert_eq!(out.nodes, plain.nodes);
        assert!(out.timeline.is_empty(), "unreached events leave no marker");
    }

    #[test]
    fn full_link_loss_isolates_every_node() {
        let sched = WorldSchedule::new().at(0, WorldEvent::SetLinkLoss { p: 1.0 });
        let mut proto = toy(16);
        let out = Simulation::new(&mut proto)
            .schedule(&sched)
            .config(EngineConfig::capped(5_000))
            .run(6);
        assert_eq!(out.totals.heard_message, 0, "p = 1.0 drops every link");
        assert_eq!(out.informed_count(), 1, "only the source knows m");
        assert!(!out.all_informed);
    }

    #[test]
    fn partial_link_loss_slows_but_does_not_stop_broadcast() {
        let lossy = WorldSchedule::new().at(0, WorldEvent::SetLinkLoss { p: 0.5 });
        let mut proto = toy(16);
        let out = Simulation::new(&mut proto)
            .schedule(&lossy)
            .config(EngineConfig::capped(200_000))
            .run(6);
        assert!(
            out.all_informed,
            "a 50% lossy ether still completes: {out:?}"
        );
    }
}
