//! The protocol and adversary trait contract between `rcb-sim` and the
//! algorithm implementations in `rcb-core`.
//!
//! # Population-uniform action probabilities
//!
//! All five protocols of the paper share one structural property the engine
//! relies on: **within any slot, every active node draws the same coin**
//! (`coin ← rnd(1, 1/p)` in the pseudocode), and only the *interpretation* of
//! the coin depends on the node's private status (informed nodes broadcast
//! where uninformed nodes listen or idle, etc.). A protocol therefore
//! describes each *segment* (iteration, or phase-step) by a [`SlotProfile`]
//! carrying the two class probabilities, and each node maps a drawn
//! [`Coin`] to a concrete [`Action`] in [`ProtocolNode::on_selected`].
//!
//! # Segments and boundaries
//!
//! Protocol schedules are deterministic functions of the slot index
//! (iterations of `MultiCast`, phase-steps of `MultiCastAdv`, …). The engine
//! asks the protocol for the profile of the segment starting at a given slot,
//! runs `seg_len` slots under that profile, then fires
//! [`ProtocolNode::on_boundary`] on every active node — this is where the
//! paper's end-of-iteration checks (halting on few noisy slots, helper
//! promotion, …) happen.

use crate::channel::{Feedback, Payload};
use crate::jamset::JamSet;
use crate::rng::Xoshiro256;

/// Index of a node; node `0` is always the source.
pub type NodeId = u32;

/// Static description of one schedule segment (an iteration of
/// `MultiCastCore`/`MultiCast`, or one step of an `(i, j)`-phase of
/// `MultiCastAdv`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlotProfile {
    /// Probability that a node draws coin class 1 this slot (exclusive with
    /// class 2). In the pseudocode this is `Pr[coin == 1]`.
    pub p1: f64,
    /// Probability of coin class 2 (`Pr[coin == 2]`); `p1 + p2 ≤ 1`.
    pub p2: f64,
    /// Number of *physical* channels in use this segment. Eve jams within
    /// `[0, channels)`.
    pub channels: u64,
    /// Number of *virtual* channels nodes pick from. Equal to `channels`
    /// except in round-simulated protocols (`MultiCast(C)`), where a node
    /// picks a virtual channel in `[0, virt_channels)` that the engine maps
    /// to (sub-slot `ch / channels`, physical channel `ch % channels`).
    pub virt_channels: u64,
    /// Physical slots per round. `1` for ordinary protocols; `n/(2C)` for
    /// `MultiCast(C)`, which uses one round of `n/(2C)` slots to simulate one
    /// virtual slot. Actor sampling happens once per round.
    pub round_len: u32,
    /// Length of this segment in *physical* slots; must be a multiple of
    /// `round_len`.
    pub seg_len: u64,
    /// Protocol-defined major index (iteration `i`, or epoch `i`).
    pub seg_major: u32,
    /// Protocol-defined minor index (phase `j` for `MultiCastAdv`, else 0).
    pub seg_minor: u32,
    /// Protocol-defined sub-step (0 or 1 for `MultiCastAdv` steps, else 0).
    pub step: u8,
}

impl SlotProfile {
    /// Number of virtual slots (rounds) in this segment.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.seg_len / self.round_len as u64
    }

    /// The per-round action probability `p` of the paper (equals `p1`).
    #[inline]
    pub fn p(&self) -> f64 {
        self.p1
    }
}

/// Which exclusive coin class a selected node drew.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coin {
    /// `coin == 1` in the pseudocode.
    One,
    /// `coin == 2` in the pseudocode.
    Two,
}

/// A node's concrete action for one (virtual) slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Do nothing; costs nothing.
    Idle,
    /// Listen on (virtual) channel `ch`; costs one energy unit.
    Listen { ch: u64 },
    /// Broadcast `payload` on (virtual) channel `ch`; costs one energy unit.
    Broadcast { ch: u64, payload: Payload },
}

/// Decision returned from a boundary check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryDecision {
    /// Stay active into the next segment.
    Continue,
    /// Terminate (the paper's `halt`): the node leaves the protocol and
    /// spends no further energy.
    Halt,
}

/// A broadcast protocol: schedule plus per-node behaviour.
pub trait Protocol {
    type Node: ProtocolNode;

    /// Number of nodes `n` in the network.
    fn num_nodes(&self) -> u32;

    /// Profile of the segment starting at `start_slot`. The engine calls this
    /// exactly once per segment, with strictly increasing `start_slot`
    /// (starting at 0), so implementations may keep a cursor.
    fn segment(&mut self, start_slot: u64) -> SlotProfile;

    /// Construct the state of node `id`. `is_source` is true for node 0,
    /// which starts informed (it knows the message `m` — all `k` of them
    /// for a multi-message protocol).
    fn make_node(&self, id: NodeId, is_source: bool) -> Self::Node;

    /// Number of concurrent broadcast payloads `k` this protocol carries
    /// (the multi-message broadcast model of Ahmadi & Kuhn,
    /// arXiv:1610.02931). Single-message protocols — everything in the
    /// paper — keep the default of 1. Must lie in `1..=64` (message
    /// identities fit one bitmask word). Multi-message protocols multiplex
    /// payloads via [`Payload::Msg`] and report per-node knowledge through
    /// [`ProtocolNode::informed_mask`]; the engine then fills
    /// [`crate::RunOutcome::messages`] with per-message tracking.
    fn num_messages(&self) -> u32 {
        1
    }
}

/// Per-node protocol state.
pub trait ProtocolNode {
    /// The node drew `coin` in the current (virtual) slot; choose an action.
    /// `rng` is the node's private stream. Returning [`Action::Idle`] is
    /// allowed (e.g. an uninformed node drawing the broadcast coin in
    /// `MultiCast` stays idle).
    fn on_selected(&mut self, profile: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action;

    /// Deliver channel feedback for a slot in which this node listened.
    fn on_feedback(&mut self, profile: &SlotProfile, fb: Feedback);

    /// A segment ended; run the protocol's end-of-iteration / end-of-step
    /// checks. `profile` is the profile of the segment that just finished.
    fn on_boundary(&mut self, profile: &SlotProfile) -> BoundaryDecision;

    /// Does this node currently know the message `m`? For multi-message
    /// protocols: does it know **all** `k` messages?
    fn is_informed(&self) -> bool;

    /// Bitmask of the messages this node currently knows (bit `j` set =
    /// message `j` known). The engine reads it for the per-message tracking
    /// of multi-message runs ([`crate::RunOutcome::messages`]). The default
    /// — bit 0 mirrors [`is_informed`](ProtocolNode::is_informed) — is
    /// always right for single-message protocols, and the engine never
    /// calls it on the `k = 1` hot path.
    fn informed_mask(&self) -> u64 {
        self.is_informed() as u64
    }

    /// Protocol-specific metrics for experiment reports (e.g. the `(iˆ, jˆ)`
    /// helper phase of `MultiCastAdv`).
    fn extra(&self) -> crate::metrics::NodeExtra {
        crate::metrics::NodeExtra::default()
    }

    /// Short human-readable status label for traces and examples.
    fn status_label(&self) -> &'static str {
        if self.is_informed() {
            "informed"
        } else {
            "uninformed"
        }
    }
}

/// Aggregate result of charging a jam span ([`Adversary::jam_span`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanCharge {
    /// Total energy Eve spends across the span: exactly the sum, over the
    /// span's slots, of `min(jam(slot).count(channels), remaining budget)`,
    /// with the remaining budget decreasing as she spends.
    pub spent: u64,
}

/// An oblivious jamming adversary.
///
/// Obliviousness is enforced structurally: the only inputs a strategy ever
/// receives are the slot index and the number of channels the algorithm uses
/// in that slot (public knowledge, since Eve knows the algorithm). Strategies
/// may use their own private randomness. The engine charges one unit per
/// jammed in-range channel per slot and truncates requests that exceed the
/// remaining budget (lowest-indexed channels are kept).
pub trait Adversary {
    /// The set of channels to jam in `slot`, out of `[0, channels)`.
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet;

    /// Eve's total energy budget `T`.
    fn budget(&self) -> u64;

    /// Batched counterpart of [`jam`](Adversary::jam) for a span of `len`
    /// consecutive slots starting at `start` in which **no node listens** —
    /// the engine's idle-round fast-forward asks for the whole span's energy
    /// charge in one call instead of materializing a jam set per slot.
    /// `budget` is Eve's remaining energy when the span begins.
    ///
    /// # Contract
    ///
    /// The call must return the same total charge, and leave the strategy in
    /// the same externally observable state (future `jam` results), as the
    /// engine's per-slot rule applied over the span: charge
    /// `min(jam(slot).count(channels), remaining)` per slot and stop calling
    /// `jam` once `remaining` hits zero. The default implementation is
    /// exactly that loop, so every adversary is span-correct out of the box;
    /// structured strategies override it with closed forms (see
    /// `rcb-adversary`). Strategies whose override is equivalent only *in
    /// distribution* (not per-seed) must say so in their docs — the engine's
    /// fast path then changes per-seed outcomes but not statistics.
    ///
    /// ```
    /// use rcb_sim::{Adversary, JamSet, SpanCharge};
    ///
    /// /// Jams a 3-channel prefix on even slots.
    /// struct EvenSlots;
    /// impl Adversary for EvenSlots {
    ///     fn jam(&mut self, slot: u64, _channels: u64) -> JamSet {
    ///         if slot % 2 == 0 { JamSet::Prefix(3) } else { JamSet::Empty }
    ///     }
    ///     fn budget(&self) -> u64 { 10 }
    /// }
    ///
    /// // The default implementation replays the engine's per-slot budget
    /// // rule: the even slots of [0, 8) want 3 channels each (12 total),
    /// // but the remaining budget truncates the last request to 1.
    /// let mut eve = EvenSlots;
    /// assert_eq!(eve.jam_span(0, 8, 8, 10), SpanCharge { spent: 10 });
    /// // With budget to spare, the span charges exactly the per-slot sum.
    /// assert_eq!(eve.jam_span(1, 2, 8, 100), SpanCharge { spent: 3 });
    /// ```
    fn jam_span(&mut self, start: u64, len: u64, channels: u64, budget: u64) -> SpanCharge {
        let mut remaining = budget;
        let mut spent = 0u64;
        for slot in start..start.saturating_add(len) {
            if remaining == 0 {
                break;
            }
            let take = self.jam(slot, channels).count(channels).min(remaining);
            remaining -= take;
            spent += take;
        }
        SpanCharge { spent }
    }

    /// Human-readable strategy name for reports.
    fn name(&self) -> &'static str {
        "adversary"
    }
}

/// The trivial adversary with zero budget; useful as a default and in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoAdversary;

impl Adversary for NoAdversary {
    fn jam(&mut self, _slot: u64, _channels: u64) -> JamSet {
        JamSet::Empty
    }

    fn budget(&self) -> u64 {
        0
    }

    fn jam_span(&mut self, _start: u64, _len: u64, _channels: u64, _budget: u64) -> SpanCharge {
        SpanCharge::default()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_round_arithmetic() {
        let p = SlotProfile {
            p1: 0.25,
            p2: 0.25,
            channels: 4,
            virt_channels: 16,
            round_len: 4,
            seg_len: 40,
            seg_major: 1,
            seg_minor: 0,
            step: 0,
        };
        assert_eq!(p.rounds(), 10);
        assert_eq!(p.p(), 0.25);
    }

    #[test]
    fn no_adversary_never_jams() {
        let mut adv = NoAdversary;
        assert_eq!(adv.jam(0, 16), JamSet::Empty);
        assert_eq!(adv.budget(), 0);
        assert_eq!(adv.jam_span(0, 1000, 16, 0), SpanCharge { spent: 0 });
    }

    /// The default `jam_span` must mirror the engine's per-slot budget rule,
    /// including bankruptcy mid-span.
    #[test]
    fn default_jam_span_mirrors_per_slot_budget_rule() {
        struct TwoEveryOther;
        impl Adversary for TwoEveryOther {
            fn jam(&mut self, slot: u64, _channels: u64) -> JamSet {
                if slot.is_multiple_of(2) {
                    JamSet::Prefix(2)
                } else {
                    JamSet::Empty
                }
            }
            fn budget(&self) -> u64 {
                7
            }
        }
        let mut eve = TwoEveryOther;
        // Slots 0..10 want 2 on even slots (5 × 2 = 10) but only 7 remain:
        // charges 2, 2, 2, then 1 at the bankruptcy slot.
        assert_eq!(eve.jam_span(0, 10, 8, 7), SpanCharge { spent: 7 });
        assert_eq!(eve.jam_span(0, 10, 8, 100), SpanCharge { spent: 10 });
        assert_eq!(eve.jam_span(1, 1, 8, 100), SpanCharge { spent: 0 });
        assert_eq!(eve.jam_span(0, 0, 8, 100), SpanCharge { spent: 0 });
    }
}
