//! Connectivity topologies: who can hear whom.
//!
//! The paper's model is **single-hop**: every node hears every (un-jammed,
//! collision-free) transmission, which is exactly a complete graph. This
//! module generalizes the substrate to an arbitrary connectivity graph so
//! broadcast must *propagate*: a listener only receives a transmission if an
//! edge connects it to the transmitter in that round, informed nodes act as
//! relay sources, and a run is complete when every node **reachable** from
//! the source is informed.
//!
//! # Generators
//!
//! A [`Topology`] is a declarative, seed-deterministic recipe:
//!
//! * [`Topology::Complete`] — the paper's single-hop model. The engine's
//!   delivery step degenerates to the classic channel board semantics; by
//!   contract (enforced by `tests/topology_equivalence.rs`) a run under
//!   `Complete` is **byte-identical** to a run with no topology at all:
//!   same RNG draws, same traces, same fast-forward spans.
//! * [`Topology::Line`] — the path `0 – 1 – … – (n−1)`; diameter `n − 1`,
//!   the worst case for propagation depth.
//! * [`Topology::Grid`] — a `cols`-wide grid in row-major node order (the
//!   last row may be partial); a full `r × c` grid has diameter
//!   `(r − 1) + (c − 1)`.
//! * [`Topology::RandomGeometric`] — `n` points uniform in the unit square
//!   (positions drawn from `seed`), an edge when two points are within
//!   `radius`. [`Topology::connectivity_radius`] returns a radius safely
//!   above the `Θ(√(ln n / n))` connectivity threshold.
//! * [`Topology::Dynamic`] — per-round edge churn over a static base graph:
//!   in each round every base edge is independently *down* with probability
//!   `p_down`, decided by **counter-based hashing** of
//!   `(seed, round, edge)`. Statelessness matters twice: rounds skipped by
//!   the engine's idle fast-forward never need their edge sets materialized,
//!   and a run stays a pure function of its seeds. This is the hook for the
//!   Ahmadi–Kuhn dynamic-network model (arXiv:1610.02931), where the
//!   adversary rewires the graph subject to connectivity constraints.
//!
//! # Reachability
//!
//! [`TopologyView::reachable_count`] is the number of nodes in the source's
//! connected component of the **base** graph. For static topologies this is
//! exactly the set of nodes broadcast can ever reach. For `Dynamic` churn
//! the base component is the almost-sure limit set: an edge that is down
//! this round recovers with constant probability every later round, so
//! every base-component node is reached eventually with probability 1.

use crate::rng::{SplitMix64, Xoshiro256};

/// A declarative, seed-deterministic connectivity graph recipe. The node
/// count comes from the protocol at engine time ([`TopologyView::build`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Topology {
    /// Every pair of nodes connected — the paper's single-hop model.
    Complete,
    /// The path `0 – 1 – … – (n−1)`.
    Line,
    /// Row-major grid, `cols` nodes per row (last row may be partial).
    Grid { cols: u32 },
    /// Random geometric graph: `n` points uniform in the unit square from
    /// `seed`, an edge when the Euclidean distance is below `radius`.
    RandomGeometric { radius: f64, seed: u64 },
    /// Per-round edge churn over `base`: each base edge is down with
    /// probability `p_down` in any given round, decided statelessly from
    /// `(seed, round, edge)`. `base` must not itself be `Dynamic`.
    Dynamic {
        base: Box<Topology>,
        p_down: f64,
        seed: u64,
    },
}

impl Topology {
    /// Short generator name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Complete => "complete",
            Topology::Line => "line",
            Topology::Grid { .. } => "grid",
            Topology::RandomGeometric { .. } => "random-geometric",
            Topology::Dynamic { .. } => "dynamic",
        }
    }

    /// A radius comfortably above the random-geometric connectivity
    /// threshold `√(ln n / (π n))`, so graphs at this radius are connected
    /// for all but a vanishing fraction of seeds.
    pub fn connectivity_radius(n: u32) -> f64 {
        assert!(n >= 2);
        (3.0 * (n as f64).ln() / n as f64).sqrt().min(1.0)
    }
}

/// Counter-based churn decision: is `edge` down in `round`?
#[derive(Clone, Copy, Debug)]
struct Churn {
    seed: u64,
    /// `p_down` mapped onto the full `u64` range.
    threshold: u64,
}

impl Churn {
    fn new(p_down: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_down),
            "p_down must be a probability, got {p_down}"
        );
        // Exact at both endpoints: 0.0 → never down, 1.0 → always down.
        let threshold = if p_down >= 1.0 {
            u64::MAX
        } else {
            (p_down * 2f64.powi(64)) as u64
        };
        Self { seed, threshold }
    }

    #[inline]
    fn is_down(&self, round: u64, edge: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        if self.threshold == u64::MAX {
            return true;
        }
        let mut sm = SplitMix64::new(
            self.seed
                ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ edge.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        sm.next_u64() < self.threshold
    }
}

/// A [`Topology`] realized for a concrete node count: adjacency, source
/// reachability, and (for `Dynamic`) the churn rule. Built once per run;
/// construction draws only from the topology's own seeds, never from the
/// engine or node streams.
#[derive(Clone, Debug)]
pub struct TopologyView {
    n: u32,
    /// Base adjacency as a bit matrix; `None` for the complete graph.
    adj: Option<AdjBits>,
    churn: Option<Churn>,
    reachable: Vec<bool>,
    reachable_count: u32,
}

/// Dense bit-matrix adjacency (no self-loops); `n` is small enough in every
/// workload (≤ a few thousand) that `n²` bits is trivial.
#[derive(Clone, Debug)]
struct AdjBits {
    n: u32,
    stride: usize,
    words: Vec<u64>,
}

impl AdjBits {
    fn new(n: u32) -> Self {
        let stride = (n as usize).div_ceil(64);
        Self {
            n,
            stride,
            words: vec![0; stride * n as usize],
        }
    }

    #[inline]
    fn add_edge(&mut self, u: u32, v: u32) {
        debug_assert!(u != v && u < self.n && v < self.n);
        self.words[u as usize * self.stride + v as usize / 64] |= 1 << (v % 64);
        self.words[v as usize * self.stride + u as usize / 64] |= 1 << (u % 64);
    }

    #[inline]
    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.words[u as usize * self.stride + v as usize / 64] & (1 << (v % 64)) != 0
    }
}

impl TopologyView {
    /// Realize `topology` for `n` nodes.
    ///
    /// # Panics
    /// Panics on invalid parameters (`n < 2`, zero-width grids, radii or
    /// churn probabilities outside range, nested `Dynamic`).
    pub fn build(topology: &Topology, n: u32) -> Self {
        assert!(n >= 2, "a topology needs at least two nodes");
        let (adj, churn) = match topology {
            Topology::Complete => (None, None),
            Topology::Dynamic { base, p_down, seed } => {
                assert!(
                    !matches!(**base, Topology::Dynamic { .. }),
                    "Dynamic topologies cannot nest"
                );
                let base_adj = Self::base_adjacency(base, n);
                (base_adj, Some(Churn::new(*p_down, *seed)))
            }
            other => (Self::base_adjacency(other, n), None),
        };
        let (reachable, reachable_count) = match &adj {
            None => (vec![true; n as usize], n),
            Some(bits) => {
                let mut seen = vec![false; n as usize];
                let mut queue = std::collections::VecDeque::new();
                seen[0] = true;
                queue.push_back(0u32);
                let mut count = 1u32;
                while let Some(u) = queue.pop_front() {
                    for v in 0..n {
                        if !seen[v as usize] && bits.has_edge(u, v) {
                            seen[v as usize] = true;
                            count += 1;
                            queue.push_back(v);
                        }
                    }
                }
                (seen, count)
            }
        };
        Self {
            n,
            adj,
            churn,
            reachable,
            reachable_count,
        }
    }

    /// Base (churn-free) adjacency for a static generator; `None` only for
    /// `Complete` (handled by the caller).
    fn base_adjacency(topology: &Topology, n: u32) -> Option<AdjBits> {
        let mut bits = AdjBits::new(n);
        match topology {
            Topology::Complete => return None,
            Topology::Dynamic { .. } => unreachable!("caller unwraps Dynamic"),
            Topology::Line => {
                for u in 0..n - 1 {
                    bits.add_edge(u, u + 1);
                }
            }
            Topology::Grid { cols } => {
                let cols = *cols;
                assert!(cols >= 1, "grid needs at least one column");
                for u in 0..n {
                    if (u + 1) % cols != 0 && u + 1 < n {
                        bits.add_edge(u, u + 1);
                    }
                    if u + cols < n {
                        bits.add_edge(u, u + cols);
                    }
                }
            }
            Topology::RandomGeometric { radius, seed } => {
                assert!(
                    *radius > 0.0 && radius.is_finite(),
                    "radius must be positive, got {radius}"
                );
                let mut rng = Xoshiro256::seeded(*seed);
                let pts: Vec<(f64, f64)> =
                    (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
                let r2 = radius * radius;
                for u in 0..n {
                    for v in u + 1..n {
                        let (dx, dy) = (
                            pts[u as usize].0 - pts[v as usize].0,
                            pts[u as usize].1 - pts[v as usize].1,
                        );
                        if dx * dx + dy * dy < r2 {
                            bits.add_edge(u, v);
                        }
                    }
                }
            }
        }
        Some(bits)
    }

    /// Node count.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Is this the complete (single-hop) graph?
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.adj.is_none()
    }

    /// Can `v` hear a transmission by `u` in the round starting at slot
    /// `round`? For `Complete` this is unconditionally true (matching the
    /// channel-board semantics the single-hop engine uses); otherwise the
    /// base edge must exist and, under churn, be up this round.
    #[inline]
    pub fn connected(&self, u: u32, v: u32, round: u64) -> bool {
        match &self.adj {
            None => true,
            Some(bits) => {
                if !bits.has_edge(u, v) {
                    return false;
                }
                match &self.churn {
                    None => true,
                    Some(churn) => !churn.is_down(round, edge_id(self.n, u, v)),
                }
            }
        }
    }

    /// Is `v` in the source's connected component of the base graph?
    #[inline]
    pub fn is_reachable(&self, v: u32) -> bool {
        self.reachable[v as usize]
    }

    /// Number of nodes reachable from the source (including the source).
    #[inline]
    pub fn reachable_count(&self) -> u32 {
        self.reachable_count
    }

    /// Is the base graph connected?
    pub fn is_connected(&self) -> bool {
        self.reachable_count == self.n
    }

    /// Number of base edges.
    pub fn base_edge_count(&self) -> usize {
        match &self.adj {
            None => (self.n as usize * (self.n as usize - 1)) / 2,
            Some(bits) => {
                let mut count = 0;
                for u in 0..self.n {
                    for v in u + 1..self.n {
                        count += bits.has_edge(u, v) as usize;
                    }
                }
                count
            }
        }
    }

    /// Number of edges up in the round starting at slot `round` (equals
    /// [`base_edge_count`](Self::base_edge_count) without churn).
    pub fn active_edge_count(&self, round: u64) -> usize {
        let mut count = 0;
        for u in 0..self.n {
            for v in u + 1..self.n {
                count += self.connected(u, v, round) as usize;
            }
        }
        count
    }

    /// Exact base-graph diameter via BFS from every node; `None` when the
    /// graph is disconnected. Test/diagnostic helper, O(n·m).
    pub fn diameter(&self) -> Option<u64> {
        if !self.is_connected() {
            return None;
        }
        if self.adj.is_none() {
            return Some(1);
        }
        let mut diameter = 0u64;
        let mut dist = vec![u64::MAX; self.n as usize];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.n {
            dist.fill(u64::MAX);
            dist[start as usize] = 0;
            queue.clear();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for v in 0..self.n {
                    if dist[v as usize] == u64::MAX
                        && self.adj.as_ref().is_some_and(|b| b.has_edge(u, v))
                    {
                        dist[v as usize] = dist[u as usize] + 1;
                        queue.push_back(v);
                    }
                }
            }
            diameter = diameter.max(*dist.iter().max().expect("n >= 2"));
        }
        Some(diameter)
    }
}

/// Canonical id of the undirected edge `{u, v}`.
#[inline]
pub(crate) fn edge_id(n: u32, u: u32, v: u32) -> u64 {
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    lo as u64 * n as u64 + hi as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_is_always_connected() {
        let view = TopologyView::build(&Topology::Complete, 16);
        assert!(view.is_complete());
        assert!(view.is_connected());
        assert_eq!(view.reachable_count(), 16);
        assert_eq!(view.diameter(), Some(1));
        assert!(view.connected(3, 11, 0));
        assert_eq!(view.base_edge_count(), 16 * 15 / 2);
    }

    #[test]
    fn line_shape() {
        let view = TopologyView::build(&Topology::Line, 8);
        assert!(view.is_connected());
        assert_eq!(view.diameter(), Some(7));
        assert_eq!(view.base_edge_count(), 7);
        assert!(view.connected(3, 4, 0));
        assert!(!view.connected(0, 2, 0));
    }

    #[test]
    fn grid_shape_and_partial_last_row() {
        // 3 columns, 8 nodes: rows [0 1 2] [3 4 5] [6 7].
        let view = TopologyView::build(&Topology::Grid { cols: 3 }, 8);
        assert!(view.is_connected());
        assert!(view.connected(0, 1, 0));
        assert!(view.connected(1, 4, 0));
        assert!(!view.connected(2, 3, 0), "no wraparound between rows");
        assert!(view.connected(4, 7, 0));
        // Full 4x3 grid diameter: (rows-1)+(cols-1).
        let full = TopologyView::build(&Topology::Grid { cols: 3 }, 12);
        assert_eq!(full.diameter(), Some(3 + 2));
    }

    #[test]
    fn random_geometric_is_deterministic_per_seed() {
        let topo = |seed| Topology::RandomGeometric { radius: 0.4, seed };
        let a = TopologyView::build(&topo(7), 32);
        let b = TopologyView::build(&topo(7), 32);
        let c = TopologyView::build(&topo(8), 32);
        assert_eq!(a.base_edge_count(), b.base_edge_count());
        for u in 0..32 {
            for v in 0..32 {
                if u != v {
                    assert_eq!(a.connected(u, v, 0), b.connected(u, v, 0));
                }
            }
        }
        assert_ne!(
            (0..32)
                .flat_map(|u| (0..32).map(move |v| (u, v)))
                .filter(|&(u, v)| u < v && a.connected(u, v, 0))
                .count(),
            0
        );
        // Different seeds almost surely place points differently.
        assert_ne!(a.base_edge_count(), c.base_edge_count());
    }

    #[test]
    fn connectivity_radius_connects() {
        for n in [8u32, 32, 128] {
            let r = Topology::connectivity_radius(n);
            for seed in 0..8 {
                let view = TopologyView::build(&Topology::RandomGeometric { radius: r, seed }, n);
                assert!(view.is_connected(), "n={n} seed={seed} disconnected");
            }
        }
    }

    #[test]
    fn disconnected_geometric_has_partial_reachability() {
        // A tiny radius leaves almost every node isolated.
        let view = TopologyView::build(
            &Topology::RandomGeometric {
                radius: 0.01,
                seed: 3,
            },
            64,
        );
        assert!(!view.is_connected());
        assert!(view.reachable_count() < 64);
        assert!(view.is_reachable(0), "the source reaches itself");
        assert_eq!(view.diameter(), None);
    }

    #[test]
    fn dynamic_churn_is_stateless_and_bounded_by_base() {
        let topo = Topology::Dynamic {
            base: Box::new(Topology::Grid { cols: 4 }),
            p_down: 0.5,
            seed: 11,
        };
        let view = TopologyView::build(&topo, 16);
        let base = TopologyView::build(&Topology::Grid { cols: 4 }, 16);
        assert_eq!(
            view.reachable_count(),
            16,
            "reachability uses the base graph"
        );
        for round in [0u64, 1, 17, 1_000_000] {
            // Same round twice → same edge set (stateless).
            assert_eq!(view.active_edge_count(round), view.active_edge_count(round));
            assert!(view.active_edge_count(round) <= base.base_edge_count());
            for u in 0..16 {
                for v in 0..16 {
                    if u != v && view.connected(u, v, round) {
                        assert!(base.connected(u, v, 0), "churn can only remove edges");
                    }
                }
            }
        }
        // Churn actually flips some edges across rounds at p_down = 0.5.
        let counts: Vec<usize> = (0..16).map(|r| view.active_edge_count(r)).collect();
        assert!(counts.iter().any(|&c| c != counts[0]));
    }

    #[test]
    fn churn_endpoints_are_exact() {
        let mk = |p_down| {
            TopologyView::build(
                &Topology::Dynamic {
                    base: Box::new(Topology::Line),
                    p_down,
                    seed: 5,
                },
                8,
            )
        };
        let never = mk(0.0);
        let always = mk(1.0);
        for round in 0..32 {
            assert_eq!(never.active_edge_count(round), 7);
            assert_eq!(always.active_edge_count(round), 0);
        }
    }

    #[test]
    #[should_panic(expected = "cannot nest")]
    fn nested_dynamic_rejected() {
        let inner = Topology::Dynamic {
            base: Box::new(Topology::Line),
            p_down: 0.1,
            seed: 1,
        };
        TopologyView::build(
            &Topology::Dynamic {
                base: Box::new(inner),
                p_down: 0.1,
                seed: 2,
            },
            8,
        );
    }

    #[test]
    fn names() {
        assert_eq!(Topology::Complete.name(), "complete");
        assert_eq!(Topology::Line.name(), "line");
        assert_eq!(Topology::Grid { cols: 4 }.name(), "grid");
        assert_eq!(
            Topology::RandomGeometric {
                radius: 0.5,
                seed: 0
            }
            .name(),
            "random-geometric"
        );
        assert_eq!(
            Topology::Dynamic {
                base: Box::new(Topology::Line),
                p_down: 0.2,
                seed: 0
            }
            .name(),
            "dynamic"
        );
    }
}
