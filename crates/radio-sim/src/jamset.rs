//! Compact representations of the set of channels Eve jams in one slot.
//!
//! Jam sets are produced by [`Adversary`](crate::protocol::Adversary)
//! implementations once per slot and queried by the engine for (a) membership
//! when resolving listener feedback and (b) cardinality when charging Eve's
//! energy budget. Different strategies favour different shapes — a full-band
//! burst is `All`, "jam the first 90% of channels" is a `Prefix`, a sparse
//! random pick is a sorted `List`, a dense random pick is a `Mask` — so we
//! keep an enum rather than forcing everything through one representation.

/// The set of channels jammed in a single slot.
///
/// Channel indices are `0`-based and interpreted relative to the number of
/// channels in use that slot (`channels`); members `≥ channels` are ignored
/// by both [`contains`](JamSet::contains) and [`count`](JamSet::count) —
/// jamming a channel no node can use would be wasted energy, and the engine
/// does not charge for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JamSet {
    /// No jamming this slot.
    Empty,
    /// Every channel in `[0, channels)`.
    All,
    /// Channels `[0, k)`.
    Prefix(u64),
    /// An explicit sorted, deduplicated list of channels.
    List(Vec<u64>),
    /// A bitmask; bit `i` of word `i / 64` marks channel `i`.
    Mask(Vec<u64>),
    /// A contiguous window of `len` channels starting at `start`, wrapping
    /// around modulo the channel count (the natural shape for sweeping
    /// jammers). `start` is reduced modulo `channels` at query time.
    Window { start: u64, len: u64 },
}

impl JamSet {
    /// Build a `List` variant from arbitrary (possibly unsorted, duplicated)
    /// channel indices.
    pub fn from_channels(mut chs: Vec<u64>) -> Self {
        chs.sort_unstable();
        chs.dedup();
        if chs.is_empty() {
            JamSet::Empty
        } else {
            JamSet::List(chs)
        }
    }

    /// Build a `Mask` variant covering `channels` channels from a membership
    /// predicate.
    pub fn from_predicate(channels: u64, mut f: impl FnMut(u64) -> bool) -> Self {
        let words = channels.div_ceil(64) as usize;
        let mut mask = vec![0u64; words];
        let mut any = false;
        for ch in 0..channels {
            if f(ch) {
                mask[(ch / 64) as usize] |= 1u64 << (ch % 64);
                any = true;
            }
        }
        if any {
            JamSet::Mask(mask)
        } else {
            JamSet::Empty
        }
    }

    /// Is channel `ch` jammed? (`ch` must be `< channels` for a meaningful
    /// answer; out-of-range channels report `false`.)
    #[inline]
    pub fn contains(&self, ch: u64, channels: u64) -> bool {
        if ch >= channels {
            return false;
        }
        match self {
            JamSet::Empty => false,
            JamSet::All => true,
            JamSet::Prefix(k) => ch < *k,
            JamSet::List(list) => list.binary_search(&ch).is_ok(),
            JamSet::Mask(mask) => {
                let w = (ch / 64) as usize;
                w < mask.len() && mask[w] & (1u64 << (ch % 64)) != 0
            }
            JamSet::Window { start, len } => {
                // The branch lets pre-normalized windows (the engine calls
                // [`normalize`](JamSet::normalize) once per slot) skip the
                // division on every per-listener query.
                let s = if *start < channels {
                    *start
                } else {
                    start % channels
                };
                let offset = (ch + channels - s) % channels;
                offset < (*len).min(channels)
            }
        }
    }

    /// Number of jammed channels within `[0, channels)` — what Eve pays this
    /// slot.
    pub fn count(&self, channels: u64) -> u64 {
        match self {
            JamSet::Empty => 0,
            JamSet::All => channels,
            JamSet::Prefix(k) => (*k).min(channels),
            JamSet::List(list) => list.partition_point(|&c| c < channels) as u64,
            JamSet::Mask(mask) => {
                let full_words = (channels / 64) as usize;
                let mut total: u64 = mask
                    .iter()
                    .take(full_words)
                    .map(|w| w.count_ones() as u64)
                    .sum();
                let rem = channels % 64;
                if rem > 0 && full_words < mask.len() {
                    let keep = (1u64 << rem) - 1;
                    total += (mask[full_words] & keep).count_ones() as u64;
                }
                total
            }
            JamSet::Window { len, .. } => (*len).min(channels),
        }
    }

    /// Restrict the set to its `limit` lowest-indexed members within
    /// `[0, channels)`. Used by the engine when Eve's remaining budget cannot
    /// pay for the full request; the truncation rule is deterministic so the
    /// adversary stays oblivious.
    pub fn truncate(self, limit: u64, channels: u64) -> JamSet {
        if limit == 0 {
            return JamSet::Empty;
        }
        if self.count(channels) <= limit {
            return self;
        }
        match self {
            JamSet::Empty => JamSet::Empty,
            JamSet::All => JamSet::Prefix(limit),
            JamSet::Prefix(_) => JamSet::Prefix(limit),
            JamSet::List(list) => {
                let keep: Vec<u64> = list
                    .into_iter()
                    .filter(|&c| c < channels)
                    .take(limit as usize)
                    .collect();
                if keep.is_empty() {
                    JamSet::Empty
                } else {
                    JamSet::List(keep)
                }
            }
            JamSet::Mask(mut mask) => {
                // Masks never contain bits >= channels (constructor invariant),
                // so keeping the lowest `limit` set bits is exactly "the
                // `limit` lowest-indexed jammed channels".
                let mut remaining = limit;
                for w in mask.iter_mut() {
                    if remaining == 0 {
                        *w = 0;
                        continue;
                    }
                    let ones = w.count_ones() as u64;
                    if ones <= remaining {
                        remaining -= ones;
                    } else {
                        // Keep only the lowest `remaining` set bits of this word.
                        let mut kept = 0u64;
                        let mut word = *w;
                        for _ in 0..remaining {
                            let bit = word & word.wrapping_neg();
                            kept |= bit;
                            word ^= bit;
                        }
                        *w = kept;
                        remaining = 0;
                    }
                }
                JamSet::Mask(mask)
            }
            JamSet::Window { start, len } => {
                // Materialize and defer to the List rule (truncation happens
                // at most once per run, at Eve's bankruptcy moment).
                let s = start % channels;
                let l = len.min(channels);
                let members: Vec<u64> = (0..l).map(|i| (s + i) % channels).collect();
                JamSet::from_channels(members).truncate(limit, channels)
            }
        }
    }

    /// Reduce a `Window`'s start modulo the channel count once, so that the
    /// per-listener [`contains`](JamSet::contains) queries of the slot skip
    /// the reduction. Other variants pass through untouched. Semantics are
    /// unchanged — normalization is purely an engine-side micro-optimization.
    #[inline]
    pub fn normalize(self, channels: u64) -> JamSet {
        match self {
            JamSet::Window { start, len } if channels > 0 && start >= channels => JamSet::Window {
                start: start % channels,
                len,
            },
            other => other,
        }
    }

    /// Fraction of channels jammed (for diagnostics).
    pub fn fraction(&self, channels: u64) -> f64 {
        if channels == 0 {
            0.0
        } else {
            self.count(channels) as f64 / channels as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_all() {
        assert_eq!(JamSet::Empty.count(10), 0);
        assert!(!JamSet::Empty.contains(3, 10));
        assert_eq!(JamSet::All.count(10), 10);
        assert!(JamSet::All.contains(9, 10));
        assert!(!JamSet::All.contains(10, 10), "out of range is not jammed");
    }

    #[test]
    fn prefix_semantics() {
        let s = JamSet::Prefix(4);
        assert!(s.contains(0, 8) && s.contains(3, 8));
        assert!(!s.contains(4, 8));
        assert_eq!(s.count(8), 4);
        assert_eq!(s.count(2), 2, "count clamps to channels in use");
    }

    #[test]
    fn list_built_sorted_and_deduped() {
        let s = JamSet::from_channels(vec![5, 1, 5, 3]);
        assert!(s.contains(1, 8) && s.contains(3, 8) && s.contains(5, 8));
        assert!(!s.contains(2, 8));
        assert_eq!(s.count(8), 3);
        assert_eq!(s.count(4), 2, "channel 5 is outside a 4-channel slot");
    }

    #[test]
    fn from_channels_empty_is_empty_variant() {
        assert_eq!(JamSet::from_channels(vec![]), JamSet::Empty);
    }

    #[test]
    fn mask_counting_across_word_boundaries() {
        let s = JamSet::from_predicate(130, |ch| ch % 2 == 0);
        assert_eq!(s.count(130), 65);
        assert!(s.contains(0, 130) && s.contains(128, 130));
        assert!(!s.contains(1, 130));
        assert_eq!(s.count(64), 32);
        assert_eq!(s.count(65), 33);
    }

    #[test]
    fn truncate_all_becomes_prefix() {
        let t = JamSet::All.truncate(3, 10);
        assert_eq!(t.count(10), 3);
        assert!(t.contains(0, 10) && t.contains(2, 10) && !t.contains(3, 10));
    }

    #[test]
    fn truncate_list_keeps_lowest() {
        let s = JamSet::from_channels(vec![2, 4, 6, 8]);
        let t = s.truncate(2, 10);
        assert!(t.contains(2, 10) && t.contains(4, 10));
        assert!(!t.contains(6, 10) && !t.contains(8, 10));
        assert_eq!(t.count(10), 2);
    }

    #[test]
    fn truncate_noop_when_within_budget() {
        let s = JamSet::from_channels(vec![1, 2]);
        let t = s.clone().truncate(5, 10);
        assert_eq!(s, t);
    }

    #[test]
    fn truncate_mask_keeps_lowest_bits() {
        let s = JamSet::from_predicate(100, |ch| ch >= 10);
        let t = s.truncate(5, 100);
        assert_eq!(t.count(100), 5);
        for ch in 10..15 {
            assert!(t.contains(ch, 100), "channel {ch} should survive");
        }
        assert!(!t.contains(15, 100));
    }

    #[test]
    fn truncate_to_zero_is_empty() {
        assert_eq!(JamSet::All.truncate(0, 10), JamSet::Empty);
        assert_eq!(
            JamSet::from_channels(vec![1]).truncate(0, 10),
            JamSet::Empty
        );
    }

    #[test]
    fn fraction_diagnostic() {
        assert_eq!(JamSet::Prefix(5).fraction(10), 0.5);
        assert_eq!(JamSet::Empty.fraction(0), 0.0);
    }

    #[test]
    fn window_without_wraparound() {
        let s = JamSet::Window { start: 2, len: 3 };
        for ch in 0..10 {
            assert_eq!(s.contains(ch, 10), (2..5).contains(&ch), "channel {ch}");
        }
        assert_eq!(s.count(10), 3);
    }

    #[test]
    fn window_with_wraparound() {
        let s = JamSet::Window { start: 8, len: 4 };
        // Covers 8, 9, 0, 1 in a 10-channel slot.
        for ch in [8u64, 9, 0, 1] {
            assert!(s.contains(ch, 10), "channel {ch} should be jammed");
        }
        for ch in [2u64, 3, 7] {
            assert!(!s.contains(ch, 10), "channel {ch} should be clear");
        }
        assert_eq!(s.count(10), 4);
    }

    #[test]
    fn window_longer_than_band_is_all() {
        let s = JamSet::Window { start: 3, len: 100 };
        assert_eq!(s.count(10), 10);
        for ch in 0..10 {
            assert!(s.contains(ch, 10));
        }
    }

    #[test]
    fn window_start_normalized() {
        let s = JamSet::Window { start: 12, len: 2 };
        // start 12 ≡ 2 (mod 10)
        assert!(s.contains(2, 10) && s.contains(3, 10));
        assert!(!s.contains(4, 10));
    }

    #[test]
    fn normalize_reduces_window_start_only() {
        let s = JamSet::Window { start: 12, len: 2 }.normalize(10);
        assert_eq!(s, JamSet::Window { start: 2, len: 2 });
        assert!(s.contains(2, 10) && s.contains(3, 10) && !s.contains(4, 10));
        // Already-reduced windows and other variants are untouched.
        let w = JamSet::Window { start: 3, len: 2 };
        assert_eq!(w.clone().normalize(10), w);
        assert_eq!(JamSet::Prefix(4).normalize(10), JamSet::Prefix(4));
        assert_eq!(JamSet::All.normalize(0), JamSet::All);
    }

    #[test]
    fn window_truncates_to_lowest_indices() {
        let s = JamSet::Window { start: 8, len: 4 }; // {8, 9, 0, 1}
        let t = s.truncate(2, 10);
        assert!(t.contains(0, 10) && t.contains(1, 10));
        assert!(!t.contains(8, 10) && !t.contains(9, 10));
        assert_eq!(t.count(10), 2);
    }

    /// All representations of the same set must agree on contains/count.
    #[test]
    fn representations_agree() {
        let channels = 96u64;
        let members: Vec<u64> = (0..channels).filter(|c| c % 7 == 0).collect();
        let list = JamSet::from_channels(members.clone());
        let mask = JamSet::from_predicate(channels, |c| c % 7 == 0);
        assert_eq!(list.count(channels), mask.count(channels));
        for ch in 0..channels {
            assert_eq!(
                list.contains(ch, channels),
                mask.contains(ch, channels),
                "disagreement at {ch}"
            );
        }
        // And after truncation to the same limit:
        let lt = list.truncate(5, channels);
        let mt = mask.truncate(5, channels);
        assert_eq!(lt.count(channels), 5);
        assert_eq!(mt.count(channels), 5);
        for ch in 0..channels {
            assert_eq!(lt.contains(ch, channels), mt.contains(ch, channels));
        }
    }
}
