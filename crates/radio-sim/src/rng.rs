//! Deterministic pseudo-random number generation.
//!
//! The simulator needs many independent, reproducible random streams: one per
//! node, one for the engine's actor sampling, one per adversary. We implement
//! [splitmix64] for seed derivation / state expansion and [xoshiro256**] for
//! the streams themselves. Both are tiny, fast, and well studied; having our
//! own implementation keeps every bit of the simulation reproducible across
//! platforms and independent of external crate version bumps.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256**]: https://prng.di.unimi.it/xoshiro256starstar.c

/// SplitMix64: a fast 64-bit generator used here to derive seeds and to
/// expand a single `u64` seed into the 256-bit state of [`Xoshiro256`]
/// (the seeding procedure recommended by the xoshiro authors).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derive an independent stream seed from a master seed and a stream index.
///
/// Used to give every node, trial, and adversary its own statistically
/// independent generator while keeping the whole experiment reproducible from
/// one master seed.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Feed both values through splitmix so that contiguous stream indices do
    // not produce correlated xoshiro states.
    let mut sm = SplitMix64::new(master ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
    let a = sm.next_u64();
    let mut sm2 = SplitMix64::new(a.wrapping_add(stream));
    sm2.next_u64()
}

/// xoshiro256**: the simulator's workhorse generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush. All protocol,
/// engine, and adversary randomness flows through this type.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
    draws: u64,
}

impl Xoshiro256 {
    /// Seed via splitmix64 state expansion (the reference seeding procedure).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is the one invalid state; splitmix64 cannot
        // produce four zero outputs in a row, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            return Self {
                s: [0x1, 0x9E37, 0x79B9, 0x7F4A],
                draws: 0,
            };
        }
        Self { s, draws: 0 }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// How many `next_u64` draws this stream has made since it was seeded.
    /// Every derived draw (`next_f64`, `gen_range`, `gen_bool`, `shuffle`)
    /// funnels through `next_u64`, so this counts *raw 64-bit words*, not
    /// API calls (`gen_range` may consume several in its rejection loop).
    #[inline]
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform integer in `[0, n)`, unbiased (Lemire's method).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            // Rejection zone to remove modulo bias.
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors for splitmix64 with seed 0, from the public-domain
    /// reference implementation by Sebastiano Vigna.
    #[test]
    fn splitmix64_reference_vectors() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(sm.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn splitmix64_seed_1234567_vectors() {
        // Reference values produced by the canonical C implementation.
        let mut sm = SplitMix64::new(1234567);
        let v: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        // Self-consistency: re-seeding reproduces the sequence.
        let mut sm2 = SplitMix64::new(1234567);
        for x in &v {
            assert_eq!(*x, sm2.next_u64());
        }
        // And the sequence must not be constant.
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seeded(43);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "different seeds should decorrelate streams");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seeded(7);
        for _ in 0..100_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = Xoshiro256::seeded(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = Xoshiro256::seeded(3);
        let n = 10u64;
        let mut counts = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            let x = rng.gen_range(n);
            assert!(x < n);
            counts[x as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, c) in counts.iter().enumerate() {
            let dev = (*c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} off by {dev:.3}");
        }
    }

    #[test]
    fn gen_range_one_is_always_zero() {
        let mut rng = Xoshiro256::seeded(5);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(1), 0);
        }
    }

    #[test]
    #[should_panic]
    fn gen_range_zero_panics() {
        Xoshiro256::seeded(0).gen_range(0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Xoshiro256::seeded(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(-1.0));
            assert!(rng.gen_bool(2.0));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = Xoshiro256::seeded(10);
        let p = 1.0 / 64.0;
        let trials = 400_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(p)).count();
        let expect = trials as f64 * p;
        let sd = (trials as f64 * p * (1.0 - p)).sqrt();
        let z = (hits as f64 - expect) / sd;
        assert!(z.abs() < 4.0, "z-score {z} out of range");
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        let s2 = derive_seed(100, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // Streams from adjacent indices should look unrelated.
        let mut a = Xoshiro256::seeded(s0);
        let mut b = Xoshiro256::seeded(s1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seeded(21);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
