//! Declarative world-event schedules: the nemesis layer.
//!
//! A [`WorldSchedule`] is a sorted list of time-indexed [`WorldEvent`]s —
//! adversary swaps, network partitions, node crashes/recoveries, and lossy
//! links — mounted on a [`Simulation`](crate::Simulation) via
//! [`schedule`](crate::Simulation::schedule). The engine applies events at
//! **round starts**: an event scheduled for slot `s` fires at the first
//! round-start slot `≥ s`, exactly the granularity at which actor sampling
//! (and therefore the idle fast-forward) is decided. Pending events clip
//! fast-forward spans the same way segment boundaries already do, so every
//! applied event lands on a span boundary and idle-round skipping stays
//! sound — and a mounted-but-empty schedule is byte-identical to no
//! schedule at all (same RNG draws, same traces, same spans; enforced by
//! `tests/schedule_equivalence.rs`).
//!
//! # Event catalog
//!
//! * [`WorldEvent::SwapEve`] — replace the adversary seat with the next
//!   entry of the swap queue ([`Simulation::swap_eve`](crate::Simulation::swap_eve));
//!   the incoming Eve starts with her own full budget while
//!   [`RunOutcome::eve_spent`](crate::RunOutcome::eve_spent) keeps
//!   accumulating across seats.
//! * [`WorldEvent::Partition`] — overlay a partition on connectivity: nodes
//!   in different groups cannot hear each other. Nodes absent from every
//!   group form one implicit residual group. [`WorldEvent::Heal`] removes
//!   the overlay.
//! * [`WorldEvent::CrashNodes`] / [`WorldEvent::RecoverNodes`] — fail-stop
//!   crashes with memory: a crashed node leaves the actor-sampling pool
//!   (it neither acts nor hears, and cannot halt or become informed) but
//!   keeps its protocol state, informed status, and energy ledger; recovery
//!   re-admits it. Crashed nodes leave the completion accounting through
//!   the survivor-relative verdict
//!   ([`RunOutcome::survivors_all_informed`](crate::RunOutcome::survivors_all_informed)).
//! * [`WorldEvent::SetLinkLoss`] — independent per-round per-link loss with
//!   probability `p`, decided by counter-based hashing of
//!   `(seed, round, edge)` exactly like `Topology::Dynamic` churn, so
//!   skipped rounds never materialize a loss decision. `p = 0.0` turns the
//!   overlay off.
//!
//! Partition and link-loss overlays gate **delivery only**: the base
//! topology (and with it [`RunOutcome::reachable`](crate::RunOutcome::reachable))
//! is unchanged, matching the model where disruption is transient.

use crate::rng::SplitMix64;

/// One time-indexed disruption. See the [module docs](self) for semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum WorldEvent {
    /// Replace the adversary seat with the next queued swap Eve (no-op when
    /// the queue is exhausted).
    SwapEve,
    /// Partition the network: nodes in different groups cannot hear each
    /// other; nodes listed in no group share one residual group.
    Partition { groups: Vec<Vec<u32>> },
    /// Remove any active partition overlay.
    Heal,
    /// Fail-stop the listed nodes (unknown / already-crashed / halted ids
    /// are ignored).
    CrashNodes { nodes: Vec<u32> },
    /// Recover the listed nodes with their pre-crash state intact.
    RecoverNodes { nodes: Vec<u32> },
    /// Set the independent per-round link-loss probability (`0.0` = off).
    SetLinkLoss { p: f64 },
}

impl WorldEvent {
    /// Stable kind tag used in timeline markers, reports, and spec files.
    pub fn kind(&self) -> &'static str {
        match self {
            WorldEvent::SwapEve => "swap-eve",
            WorldEvent::Partition { .. } => "partition",
            WorldEvent::Heal => "heal",
            WorldEvent::CrashNodes { .. } => "crash",
            WorldEvent::RecoverNodes { .. } => "recover",
            WorldEvent::SetLinkLoss { .. } => "set-link-loss",
        }
    }

    /// Does this event change who can hear whom (and therefore force the
    /// per-listener delivery path even on single-hop runs)?
    pub fn affects_connectivity(&self) -> bool {
        matches!(
            self,
            WorldEvent::Partition { .. } | WorldEvent::Heal | WorldEvent::SetLinkLoss { .. }
        )
    }
}

/// A sorted list of `(slot, event)` pairs — the declarative fault script of
/// one run.
///
/// ```
/// use rcb_sim::{WorldEvent, WorldSchedule};
///
/// let sched = WorldSchedule::new()
///     .at(1_000, WorldEvent::CrashNodes { nodes: vec![3, 4] })
///     .at(5_000, WorldEvent::RecoverNodes { nodes: vec![3, 4] });
/// assert_eq!(sched.len(), 2);
/// assert_eq!(sched.first_slot(), Some(1_000));
/// assert_eq!(sched.last_slot(), Some(5_000));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorldSchedule {
    events: Vec<(u64, WorldEvent)>,
}

impl WorldSchedule {
    /// An empty schedule (byte-identical to no schedule at all).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, builder-style.
    ///
    /// # Panics
    /// Panics when `slot` is earlier than the last queued event or the
    /// event itself is invalid — the checked, non-panicking path is
    /// [`try_push`](Self::try_push).
    pub fn at(mut self, slot: u64, event: WorldEvent) -> Self {
        self.try_push(slot, event)
            .unwrap_or_else(|e| panic!("invalid schedule entry: {e}"));
        self
    }

    /// Append an event, validating slot order and event parameters. This is
    /// the spec-loader entry point: errors are strings ready for file/key
    /// context wrapping.
    pub fn try_push(&mut self, slot: u64, event: WorldEvent) -> Result<(), String> {
        if let Some(&(last, _)) = self.events.last() {
            if slot < last {
                return Err(format!(
                    "events must be in nondecreasing slot order (slot {slot} after {last})"
                ));
            }
        }
        if let WorldEvent::SetLinkLoss { p } = &event {
            if !(0.0..=1.0).contains(p) {
                return Err(format!("link-loss p must be a probability, got {p}"));
            }
        }
        if let WorldEvent::Partition { groups } = &event {
            if groups.is_empty() {
                return Err("a partition needs at least one group".to_string());
            }
        }
        self.events.push((slot, event));
        Ok(())
    }

    /// The sorted `(slot, event)` list.
    pub fn events(&self) -> &[(u64, WorldEvent)] {
        &self.events
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Slot of the earliest event, if any.
    pub fn first_slot(&self) -> Option<u64> {
        self.events.first().map(|&(s, _)| s)
    }

    /// Slot of the latest event, if any.
    pub fn last_slot(&self) -> Option<u64> {
        self.events.last().map(|&(s, _)| s)
    }

    /// Number of queued [`WorldEvent::SwapEve`] events — the length the
    /// swap-Eve queue should have.
    pub fn swap_count(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, WorldEvent::SwapEve))
            .count()
    }

    /// Does any event change connectivity (see
    /// [`WorldEvent::affects_connectivity`])?
    pub fn affects_connectivity(&self) -> bool {
        self.events.iter().any(|(_, e)| e.affects_connectivity())
    }
}

/// Timeline marker recorded in
/// [`RunOutcome::timeline`](crate::RunOutcome::timeline) for every applied
/// event: what fired, when it was asked for, and the round-start slot at
/// which the engine actually applied it. Events scheduled past the end of
/// the run never apply and leave no marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleMarker {
    /// The slot the schedule asked for.
    pub scheduled_at: u64,
    /// The round-start slot at which the event was applied (`>= scheduled_at`,
    /// equal whenever the scheduled slot is itself a round start).
    pub applied_at: u64,
    /// [`WorldEvent::kind`] of the applied event.
    pub kind: &'static str,
}

/// Reserved derive-stream id for the link-loss overlay's counter-based hash
/// (the adversary uses `1_000_003`, topologies `1_000_004`/`1_000_005`).
pub const LINK_LOSS_STREAM: u64 = 1_000_006;

/// Counter-based link-loss decision: same stateless `(seed, round, edge)`
/// hashing as `Topology::Dynamic` churn, so fast-forwarded rounds never
/// need a loss decision and runs stay pure functions of their seeds.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct LinkLoss {
    seed: u64,
    /// `p` mapped onto the full `u64` range; 0 = overlay off.
    threshold: u64,
}

impl LinkLoss {
    pub(crate) fn new(seed: u64) -> Self {
        Self { seed, threshold: 0 }
    }

    /// Install probability `p` (validated by [`WorldSchedule::try_push`]).
    pub(crate) fn set_p(&mut self, p: f64) {
        // Exact at both endpoints: 0.0 → never lost, 1.0 → always lost.
        self.threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * 2f64.powi(64)) as u64
        };
    }

    /// Is the overlay active at all?
    #[inline]
    pub(crate) fn active(&self) -> bool {
        self.threshold != 0
    }

    /// Is `edge` lost in `round`?
    #[inline]
    pub(crate) fn is_lost(&self, round: u64, edge: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        if self.threshold == u64::MAX {
            return true;
        }
        let mut sm = SplitMix64::new(
            self.seed
                ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ edge.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        sm.next_u64() < self.threshold
    }
}

/// Per-node group ids realized from a [`WorldEvent::Partition`]; nodes in
/// different groups cannot hear each other. Nodes absent from every listed
/// group share the residual group `groups.len()`.
pub(crate) fn realize_partition(groups: &[Vec<u32>], n: u32) -> Vec<u32> {
    let residual = groups.len() as u32;
    let mut ids = vec![residual; n as usize];
    for (g, members) in groups.iter().enumerate() {
        for &nid in members {
            if nid < n {
                ids[nid as usize] = g as u32;
            }
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_reports_extents() {
        let s = WorldSchedule::new()
            .at(10, WorldEvent::SwapEve)
            .at(10, WorldEvent::Heal)
            .at(99, WorldEvent::SetLinkLoss { p: 0.5 });
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.first_slot(), Some(10));
        assert_eq!(s.last_slot(), Some(99));
        assert_eq!(s.swap_count(), 1);
        assert!(s.affects_connectivity());
        assert_eq!(s.events()[1].1.kind(), "heal");
    }

    #[test]
    fn empty_schedule_is_inert() {
        let s = WorldSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.first_slot(), None);
        assert_eq!(s.last_slot(), None);
        assert_eq!(s.swap_count(), 0);
        assert!(!s.affects_connectivity());
    }

    #[test]
    fn try_push_rejects_out_of_order_and_bad_params() {
        let mut s = WorldSchedule::new();
        s.try_push(50, WorldEvent::Heal).unwrap();
        let err = s.try_push(49, WorldEvent::SwapEve).unwrap_err();
        assert!(err.contains("nondecreasing"), "{err}");
        let err = s
            .try_push(60, WorldEvent::SetLinkLoss { p: 1.5 })
            .unwrap_err();
        assert!(err.contains("probability"), "{err}");
        let err = s
            .try_push(60, WorldEvent::Partition { groups: vec![] })
            .unwrap_err();
        assert!(err.contains("at least one group"), "{err}");
        // The valid prefix survived; invalid entries were not queued.
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid schedule entry")]
    fn builder_panics_on_out_of_order() {
        let _ = WorldSchedule::new()
            .at(100, WorldEvent::Heal)
            .at(50, WorldEvent::SwapEve);
    }

    #[test]
    fn connectivity_flag_only_for_connectivity_events() {
        let crash_only = WorldSchedule::new()
            .at(5, WorldEvent::CrashNodes { nodes: vec![1] })
            .at(9, WorldEvent::RecoverNodes { nodes: vec![1] })
            .at(11, WorldEvent::SwapEve);
        assert!(!crash_only.affects_connectivity());
        assert!(WorldSchedule::new()
            .at(
                5,
                WorldEvent::Partition {
                    groups: vec![vec![0]]
                }
            )
            .affects_connectivity());
    }

    #[test]
    fn partition_realization_assigns_residual_group() {
        let ids = realize_partition(&[vec![0, 1], vec![2, 99]], 5);
        assert_eq!(ids, vec![0, 0, 1, 2, 2]); // 3 and 4 share residual group 2
    }

    #[test]
    fn link_loss_endpoints_and_statelessness() {
        let mut loss = LinkLoss::new(7);
        assert!(!loss.active());
        assert!(!loss.is_lost(3, 14));
        loss.set_p(1.0);
        assert!(loss.is_lost(0, 0));
        loss.set_p(0.5);
        assert!(loss.active());
        // Stateless: same (round, edge) → same decision; some edges differ.
        let a: Vec<bool> = (0..64).map(|e| loss.is_lost(11, e)).collect();
        let b: Vec<bool> = (0..64).map(|e| loss.is_lost(11, e)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
        loss.set_p(0.0);
        assert!(!loss.active());
    }
}
