//! Run observation hooks.
//!
//! An [`Observer`] receives structured events as the engine executes. The
//! default is no observer (zero overhead beyond a branch); examples use
//! observers for narration and experiments use them to extract time series
//! (e.g. the informed-count growth curve of experiment E1).

use crate::metrics::SlotStats;
use crate::protocol::{NodeId, SlotProfile};

/// A structured event emitted by the engine.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A node learned the message at the end of `slot`.
    Informed { node: NodeId, slot: u64 },
    /// A node halted at the end of `slot`.
    Halted { node: NodeId, slot: u64 },
    /// A segment (iteration / phase-step) ended at `slot` (exclusive).
    Boundary {
        slot: u64,
        seg_major: u32,
        seg_minor: u32,
        step: u8,
        active: u32,
        informed: u32,
    },
}

/// Receives engine events. All methods default to no-ops so implementors
/// override only what they need.
pub trait Observer {
    /// A node just became informed.
    fn on_informed(&mut self, _node: NodeId, _slot: u64) {}

    /// A node just halted.
    fn on_halted(&mut self, _node: NodeId, _slot: u64) {}

    /// A segment boundary was processed after executing `slot - 1`.
    fn on_boundary(&mut self, _slot: u64, _profile: &SlotProfile, _active: u32, _informed: u32) {}

    /// Called once per slot with that slot's activity counters.
    ///
    /// Not called for slots covered by a fast-forwarded idle span — those
    /// arrive as one [`on_idle_span`](Observer::on_idle_span) instead.
    fn on_slot(&mut self, _slot: u64, _stats: &SlotStats) {}

    /// The engine fast-forwarded `len` idle slots starting at `slot`: no
    /// node acted in any of them, and Eve spent `jammed` channel-slots of
    /// energy across the whole span.
    fn on_idle_span(&mut self, _slot: u64, _len: u64, _jammed: u64) {}
}

/// An observer that records informational events into vectors, for tests and
/// experiment post-processing. Per-slot stats are *not* recorded (they would
/// be enormous); only cumulative totals.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    pub events: Vec<TraceEvent>,
    /// (slot, informed-so-far) pairs — the epidemic growth curve.
    pub growth: Vec<(u64, u32)>,
    informed_so_far: u32,
}

impl RecordingObserver {
    pub fn new() -> Self {
        Self::default()
    }

    /// Slots at which nodes became informed, in order.
    pub fn informed_slots(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Informed { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect()
    }

    /// Slots at which nodes halted, in order.
    pub fn halted_slots(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Halted { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect()
    }
}

impl Observer for RecordingObserver {
    fn on_informed(&mut self, node: NodeId, slot: u64) {
        self.events.push(TraceEvent::Informed { node, slot });
        self.informed_so_far += 1;
        self.growth.push((slot, self.informed_so_far));
    }

    fn on_halted(&mut self, node: NodeId, slot: u64) {
        self.events.push(TraceEvent::Halted { node, slot });
    }

    fn on_boundary(&mut self, slot: u64, profile: &SlotProfile, active: u32, informed: u32) {
        self.events.push(TraceEvent::Boundary {
            slot,
            seg_major: profile.seg_major,
            seg_minor: profile.seg_minor,
            step: profile.step,
            active,
            informed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_observer_accumulates() {
        let mut obs = RecordingObserver::new();
        obs.on_informed(3, 10);
        obs.on_informed(1, 12);
        obs.on_halted(3, 20);
        assert_eq!(obs.informed_slots(), vec![10, 12]);
        assert_eq!(obs.halted_slots(), vec![20]);
        assert_eq!(obs.growth, vec![(10, 1), (12, 2)]);
    }
}
