//! Engine telemetry: plain counters and optional per-phase wall-clock.
//!
//! Every run of [`run_core`](crate::engine) fills an [`EngineTelemetry`]
//! alongside its [`RunOutcome`](crate::RunOutcome). The counters answer the
//! "where do slots go" questions the performance trajectory needs — how many
//! slots were actually executed vs. fast-forwarded, how fragmented the idle
//! spans were, how much randomness each stream class consumed, and how Eve's
//! budget split between per-slot charges and span-batched charges.
//!
//! Two invariants tie the counters to the outcome (enforced by the
//! `telemetry` integration test matrix):
//!
//! * `slots_stepped + slots_fast_forwarded == outcome.slots`
//! * `jam_spent_stepped + jam_spent_spans == outcome.eve_spent`
//!
//! # Determinism
//!
//! All counters are pure functions of `(protocol, eve, topology, config,
//! master_seed)` — collecting them never draws randomness and never branches
//! on wall-clock, so runs stay byte-identical whether or not anyone reads
//! the telemetry. The only host-dependent fields are the [`PhaseNanos`]
//! wall-clock phases, and those are populated only when
//! [`EngineConfig::time_phases`](crate::EngineConfig::time_phases) is set
//! (they are all-zero otherwise); even then the clock is read strictly
//! outside the RNG/decision path, at phase granularity.

/// Number of log₂ buckets in the idle-span length histogram. Spans are at
/// most `max_slots` long, so 32 buckets (spans up to 2³² − 1 slots) cover
/// every representable span; longer ones would clamp into the last bucket.
pub const SPAN_HIST_BUCKETS: usize = 32;

/// Per-phase wall-clock of one engine run, in nanoseconds. All-zero unless
/// [`EngineConfig::time_phases`](crate::EngineConfig::time_phases) was set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Topology realization, RNG stream derivation, node construction.
    pub setup: u64,
    /// The slot loop minus the fast-forward spans: sampling, jamming,
    /// channel resolution, feedback, boundaries.
    pub slot_loop: u64,
    /// Time spent inside taken fast-forward spans (span charge + skip).
    pub fast_forward: u64,
    /// Outcome assembly after the loop exits.
    pub finalize: u64,
}

impl PhaseNanos {
    /// Sum of all phases.
    pub fn total(&self) -> u64 {
        self.setup + self.slot_loop + self.fast_forward + self.finalize
    }

    fn merge(&mut self, other: &Self) {
        self.setup += other.setup;
        self.slot_loop += other.slot_loop;
        self.fast_forward += other.fast_forward;
        self.finalize += other.finalize;
    }
}

/// Counters filled by the engine during one run (or, after
/// [`merge`](Self::merge), an aggregate over many runs).
///
/// ```
/// # use rcb_sim::{
/// #     Action, BoundaryDecision, Coin, EngineConfig, Feedback, Payload, Protocol,
/// #     ProtocolNode, Simulation, SlotProfile, Xoshiro256,
/// # };
/// # struct Relay { n: u32 }
/// # struct Node { informed: bool }
/// # impl Protocol for Relay {
/// #     type Node = Node;
/// #     fn num_nodes(&self) -> u32 { self.n }
/// #     fn segment(&mut self, _start: u64) -> SlotProfile {
/// #         SlotProfile { p1: 0.02, p2: 0.02, channels: 2, virt_channels: 2,
/// #                       round_len: 1, seg_len: 1 << 40, seg_major: 0, seg_minor: 0, step: 0 }
/// #     }
/// #     fn make_node(&self, _id: u32, is_source: bool) -> Node { Node { informed: is_source } }
/// # }
/// # impl ProtocolNode for Node {
/// #     fn on_selected(&mut self, p: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
/// #         let ch = rng.gen_range(p.virt_channels);
/// #         match coin {
/// #             Coin::One if !self.informed => Action::Listen { ch },
/// #             Coin::Two if self.informed =>
/// #                 Action::Broadcast { ch, payload: Payload::Data },
/// #             _ => Action::Idle,
/// #         }
/// #     }
/// #     fn on_feedback(&mut self, _p: &SlotProfile, fb: Feedback) {
/// #         if fb == Feedback::Message(Payload::Data) { self.informed = true; }
/// #     }
/// #     fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
/// #         BoundaryDecision::Continue
/// #     }
/// #     fn is_informed(&self) -> bool { self.informed }
/// # }
/// let cfg = EngineConfig { stop_when_all_informed: true, ..EngineConfig::capped(1_000_000) };
/// let (out, tel) = Simulation::new(&mut Relay { n: 8 })
///     .config(cfg)
///     .run_with_telemetry(7);
/// assert_eq!(tel.slots_stepped + tel.slots_fast_forwarded, out.slots);
/// assert_eq!(tel.jam_spent_stepped + tel.jam_spent_spans, out.eve_spent);
/// assert!(tel.ff_skip_ratio() > 0.0); // most of a sparse run is skipped
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Slots executed one by one through the full per-slot path.
    pub slots_stepped: u64,
    /// Slots covered by fast-forwarded idle spans (never executed).
    pub slots_fast_forwarded: u64,
    /// Fast-forward spans taken.
    pub spans: u64,
    /// Histogram of taken span lengths: bucket `b` counts spans whose
    /// length `l` has `⌊log₂ l⌋ == b` (so bucket 0 is length 1, bucket 3
    /// lengths 8..=15, …). `Σ buckets == spans`.
    pub span_len_hist: [u64; SPAN_HIST_BUCKETS],
    /// `next_u64` draws from the engine's actor-sampling stream.
    pub rng_engine_draws: u64,
    /// `next_u64` draws summed over all per-node streams.
    pub rng_node_draws: u64,
    /// Eve's energy charged through the per-slot `jam` path.
    pub jam_spent_stepped: u64,
    /// Eve's energy charged through span-batched `jam_span` calls.
    pub jam_spent_spans: u64,
    /// Observer callbacks fired (`on_informed` + `on_halted` +
    /// `on_boundary` + `on_slot` + `on_idle_span`), whether or not an
    /// observer was mounted.
    pub observer_events: u64,
    /// [`WorldSchedule`](crate::WorldSchedule) events applied during the
    /// run (0 for unscheduled runs and for events the run never reached).
    pub schedule_events: u64,
    /// Segments where fast-forward was requested but the heuristic gate
    /// declined it (idle rounds too unlikely, or the run too short, for the
    /// span bookkeeping to pay for itself). Gated segments run the plain
    /// per-slot loop; the outcome is unchanged either way.
    pub ff_gated_segments: u64,
    /// Crashed-node slot integral: Σ over slots of the number of nodes
    /// crashed during that slot. 0 for unscheduled runs.
    pub crashed_node_slots: u64,
    /// Optional per-phase wall-clock (see [`PhaseNanos`]).
    pub phases: PhaseNanos,
}

impl EngineTelemetry {
    /// Record one taken fast-forward span of `len` slots on which Eve spent
    /// `spent` energy.
    #[inline]
    pub(crate) fn record_span(&mut self, len: u64, spent: u64) {
        self.spans += 1;
        self.slots_fast_forwarded += len;
        self.jam_spent_spans += spent;
        let bucket = (63 - len.max(1).leading_zeros()) as usize;
        self.span_len_hist[bucket.min(SPAN_HIST_BUCKETS - 1)] += 1;
    }

    /// Total slots the run covered: executed plus fast-forwarded. Equal to
    /// `RunOutcome::slots` of the same run.
    pub fn slots_total(&self) -> u64 {
        self.slots_stepped + self.slots_fast_forwarded
    }

    /// Fraction of covered slots that were fast-forwarded rather than
    /// executed, in `[0, 1]` (0 for an empty run).
    pub fn ff_skip_ratio(&self) -> f64 {
        let total = self.slots_total();
        if total == 0 {
            0.0
        } else {
            self.slots_fast_forwarded as f64 / total as f64
        }
    }

    /// Mean length of a taken span (0 if none were taken).
    pub fn mean_span_len(&self) -> f64 {
        if self.spans == 0 {
            0.0
        } else {
            self.slots_fast_forwarded as f64 / self.spans as f64
        }
    }

    /// Fold another run's telemetry into this aggregate (all counters and
    /// phase clocks sum).
    pub fn merge(&mut self, other: &Self) {
        self.slots_stepped += other.slots_stepped;
        self.slots_fast_forwarded += other.slots_fast_forwarded;
        self.spans += other.spans;
        for (a, b) in self.span_len_hist.iter_mut().zip(&other.span_len_hist) {
            *a += b;
        }
        self.rng_engine_draws += other.rng_engine_draws;
        self.rng_node_draws += other.rng_node_draws;
        self.jam_spent_stepped += other.jam_spent_stepped;
        self.jam_spent_spans += other.jam_spent_spans;
        self.observer_events += other.observer_events;
        self.schedule_events += other.schedule_events;
        self.ff_gated_segments += other.ff_gated_segments;
        self.crashed_node_slots += other.crashed_node_slots;
        self.phases.merge(&other.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_histogram_buckets_by_log2() {
        let mut tel = EngineTelemetry::default();
        tel.record_span(1, 0); // bucket 0
        tel.record_span(2, 0); // bucket 1
        tel.record_span(3, 0); // bucket 1
        tel.record_span(8, 5); // bucket 3
        tel.record_span(15, 0); // bucket 3
        assert_eq!(tel.spans, 5);
        assert_eq!(tel.slots_fast_forwarded, 1 + 2 + 3 + 8 + 15);
        assert_eq!(tel.jam_spent_spans, 5);
        assert_eq!(tel.span_len_hist[0], 1);
        assert_eq!(tel.span_len_hist[1], 2);
        assert_eq!(tel.span_len_hist[3], 2);
        assert_eq!(tel.span_len_hist.iter().sum::<u64>(), tel.spans);
    }

    #[test]
    fn ratios_handle_empty_runs() {
        let tel = EngineTelemetry::default();
        assert_eq!(tel.ff_skip_ratio(), 0.0);
        assert_eq!(tel.mean_span_len(), 0.0);
        assert_eq!(tel.slots_total(), 0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = EngineTelemetry {
            slots_stepped: 10,
            rng_engine_draws: 3,
            observer_events: 2,
            phases: PhaseNanos {
                setup: 5,
                slot_loop: 7,
                fast_forward: 1,
                finalize: 2,
            },
            ..EngineTelemetry::default()
        };
        a.record_span(4, 9);
        let mut b = EngineTelemetry {
            slots_stepped: 1,
            jam_spent_stepped: 6,
            rng_node_draws: 8,
            schedule_events: 4,
            crashed_node_slots: 12,
            ff_gated_segments: 3,
            ..EngineTelemetry::default()
        };
        b.record_span(4, 1);
        a.merge(&b);
        assert_eq!(a.slots_stepped, 11);
        assert_eq!(a.slots_fast_forwarded, 8);
        assert_eq!(a.spans, 2);
        assert_eq!(a.span_len_hist[2], 2);
        assert_eq!(a.jam_spent_stepped, 6);
        assert_eq!(a.jam_spent_spans, 10);
        assert_eq!(a.rng_engine_draws, 3);
        assert_eq!(a.rng_node_draws, 8);
        assert_eq!(a.observer_events, 2);
        assert_eq!(a.schedule_events, 4);
        assert_eq!(a.crashed_node_slots, 12);
        assert_eq!(a.ff_gated_segments, 3);
        assert_eq!(a.phases.total(), 15);
        assert_eq!(a.slots_total(), 19);
    }
}
