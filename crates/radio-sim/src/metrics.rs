//! Outcome records produced by an engine run.

use crate::schedule::ScheduleMarker;

/// Protocol-specific metrics attached to a node's outcome (e.g. the helper
/// phase `(iˆ, jˆ)` recorded by `MultiCastAdv` nodes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeExtra {
    /// Key/value pairs; keys are static strings defined by the protocol.
    pub items: Vec<(&'static str, f64)>,
}

impl NodeExtra {
    /// Look up a metric by key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.items.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// Add a metric.
    pub fn push(&mut self, key: &'static str, value: f64) {
        self.items.push((key, value));
    }
}

/// Per-node result of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeOutcome {
    /// Node id (0 = source).
    pub id: u32,
    /// Slot at the end of which the node first knew the message (`Some(0)`
    /// means "knew it from the start", i.e. the source).
    pub informed_at: Option<u64>,
    /// Slot at the end of which the node halted, if it did.
    pub halted_at: Option<u64>,
    /// Slots spent listening (one energy unit each).
    pub listen_cost: u64,
    /// Slots spent broadcasting (one energy unit each).
    pub broadcast_cost: u64,
    /// Whether the node knew the message at the moment it halted. A `false`
    /// here with `halted_at.is_some()` is a **safety violation** of the
    /// broadcast problem (Lemma 4.2 / 5.2 events).
    pub halted_informed: bool,
    /// Protocol-specific extras.
    pub extra: NodeExtra,
}

impl NodeOutcome {
    /// Total energy spent by the node.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.listen_cost + self.broadcast_cost
    }
}

/// Aggregate counts of what listeners heard during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotStats {
    pub broadcasts: u64,
    pub listens: u64,
    pub heard_silence: u64,
    pub heard_message: u64,
    pub heard_noise: u64,
    /// Channel-slots jammed by Eve (her actual spend).
    pub jammed: u64,
}

/// Per-message result of a run — the multi-message broadcast tracking of
/// [`crate::Protocol::num_messages`]. Single-message runs carry exactly one
/// entry mirroring the run-level fields, synthesized off the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageOutcome {
    /// Message id `j` (bit `j` of a node's informed mask).
    pub msg: u32,
    /// Nodes that knew this message when the run ended.
    pub informed_count: u32,
    /// Slot at the end of which every *reachable* node knew this message,
    /// if that happened.
    pub all_informed_at: Option<u64>,
    /// Nodes that halted while knowing this message.
    pub halted_knowing: u32,
}

/// Result of one engine run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Physical slots executed.
    pub slots: u64,
    /// True if every node halted before the engine's slot cap.
    pub all_halted: bool,
    /// True if every node knew the message when the run ended.
    pub all_informed: bool,
    /// Slot at the end of which the last node became informed, if all did.
    pub all_informed_at: Option<u64>,
    /// Number of nodes reachable from the source — the denominator of
    /// `all_informed`. Equals `n` for single-hop runs and for connected
    /// topologies; smaller when the connectivity graph is disconnected.
    pub reachable: u32,
    /// Eve's actual expenditure (≤ her budget).
    pub eve_spent: u64,
    /// Aggregate listener statistics.
    pub totals: SlotStats,
    /// Per-message tracking, indexed by message id (length =
    /// `Protocol::num_messages()`; a single entry for the paper's
    /// single-message protocols).
    pub messages: Vec<MessageOutcome>,
    /// Per-node outcomes, indexed by node id.
    pub nodes: Vec<NodeOutcome>,
    /// Applied [`crate::WorldSchedule`] events in application order. Empty
    /// for unscheduled runs and for events the run never reached.
    pub timeline: Vec<ScheduleMarker>,
    /// Nodes still crashed when the run ended.
    pub crashed: u32,
    /// Reachable nodes that were not crashed at the end of the run — the
    /// denominator of the survivor-relative verdict. Equals `reachable`
    /// for unscheduled runs.
    pub survivors: u32,
    /// Survivors that knew the message when the run ended.
    pub survivors_informed: u32,
    /// True if every surviving reachable node knew the message — the
    /// graceful-degradation analogue of `all_informed`. Identical to
    /// `all_informed` when no node was crashed at the end.
    pub survivors_all_informed: bool,
    /// True if every non-crashed node halted. Identical to `all_halted`
    /// when no node was crashed at the end.
    pub survivors_all_halted: bool,
}

impl RunOutcome {
    /// Maximum energy spent by any node — the quantity bounded by the
    /// resource-competitiveness definition (Definition 3.1).
    pub fn max_cost(&self) -> u64 {
        self.nodes.iter().map(NodeOutcome::cost).max().unwrap_or(0)
    }

    /// Mean per-node energy.
    pub fn mean_cost(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.cost() as f64).sum::<f64>() / self.nodes.len() as f64
    }

    /// Slot by which every node had halted (None if some never did).
    pub fn last_halt(&self) -> Option<u64> {
        self.nodes
            .iter()
            .map(|n| n.halted_at)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Number of nodes that halted while uninformed — must be 0 for a safe
    /// execution.
    pub fn safety_violations(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.halted_at.is_some() && !n.halted_informed)
            .count()
    }

    /// Number of informed nodes at the end of the run.
    pub fn informed_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.informed_at.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u32, cost: (u64, u64), halted: Option<u64>, informed: Option<u64>) -> NodeOutcome {
        NodeOutcome {
            id,
            informed_at: informed,
            halted_at: halted,
            listen_cost: cost.0,
            broadcast_cost: cost.1,
            halted_informed: informed.is_some(),
            extra: NodeExtra::default(),
        }
    }

    fn outcome(nodes: Vec<NodeOutcome>) -> RunOutcome {
        RunOutcome {
            slots: 100,
            all_halted: true,
            all_informed: true,
            all_informed_at: Some(50),
            reachable: 2,
            eve_spent: 10,
            totals: SlotStats::default(),
            messages: Vec::new(),
            nodes,
            timeline: Vec::new(),
            crashed: 0,
            survivors: 2,
            survivors_informed: 2,
            survivors_all_informed: true,
            survivors_all_halted: true,
        }
    }

    #[test]
    fn max_and_mean_cost() {
        let o = outcome(vec![
            node(0, (3, 7), Some(90), Some(0)),
            node(1, (5, 0), Some(80), Some(40)),
        ]);
        assert_eq!(o.max_cost(), 10);
        assert_eq!(o.mean_cost(), 7.5);
    }

    #[test]
    fn last_halt_requires_all() {
        let o = outcome(vec![
            node(0, (0, 0), Some(90), Some(0)),
            node(1, (0, 0), None, Some(40)),
        ]);
        assert_eq!(o.last_halt(), None);
        let o2 = outcome(vec![
            node(0, (0, 0), Some(90), Some(0)),
            node(1, (0, 0), Some(95), Some(40)),
        ]);
        assert_eq!(o2.last_halt(), Some(95));
    }

    #[test]
    fn safety_violation_counted() {
        let mut bad = node(1, (0, 0), Some(10), None);
        bad.halted_informed = false;
        let o = outcome(vec![node(0, (0, 0), Some(9), Some(0)), bad]);
        assert_eq!(o.safety_violations(), 1);
    }

    #[test]
    fn extra_lookup() {
        let mut e = NodeExtra::default();
        e.push("helper_epoch", 7.0);
        assert_eq!(e.get("helper_epoch"), Some(7.0));
        assert_eq!(e.get("missing"), None);
    }
}
