//! Per-slot channel resolution.
//!
//! Implements the reception rules of Section 3 of the paper, per channel per
//! slot:
//!
//! * no broadcaster and no jamming → **silence**;
//! * exactly one broadcaster and no jamming → the broadcaster's **message**;
//! * at least two broadcasters, or jamming (or both) → **noise**.
//!
//! Broadcasting nodes receive no feedback about channel status, and listeners
//! cannot distinguish collision noise from jamming noise.
//!
//! The board is *sparse*: it stores only the channels that were actually
//! broadcast on in this slot (expected `O(n·p)`, typically a handful), so the
//! simulator never allocates per-channel state even when a protocol phase
//! uses millions of channels (as `MultiCastAdv` can in late epochs).

/// Content of a broadcast.
///
/// The paper's protocols transmit either the broadcast payload `m` itself or
/// (in step two of `MultiCastAdv`) a special beacon `±` sent by nodes that do
/// not yet know `m`. Message *content* beyond this distinction is irrelevant
/// to the algorithms, so we do not model payload bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Payload {
    /// The actual broadcast message `m`.
    Data,
    /// The `±` beacon of `MultiCastAdv` step two.
    Beacon,
    /// Message `j` of a multi-message (`k > 1`) protocol: concurrent
    /// payloads are multiplexed by identity, so a listener learns exactly
    /// the message it decoded (`crate::Protocol::num_messages`).
    Msg(u16),
}

/// What a listening node hears on its channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Feedback {
    /// Nobody transmitted and Eve did not jam.
    Silence,
    /// Exactly one node transmitted, and Eve did not jam: clean reception.
    Message(Payload),
    /// Collision (≥ 2 transmitters) or jamming — indistinguishable.
    Noise,
}

/// Accumulates the broadcasts of one slot and answers listener queries.
///
/// Usage per slot: `clear`, any number of `add_broadcast`, one `resolve`,
/// then any number of `outcome` queries.
#[derive(Debug, Default)]
pub struct ChannelBoard {
    /// (channel, payload) per broadcast; sorted by channel after `resolve`.
    bcasts: Vec<(u64, Payload)>,
    resolved: bool,
}

impl ChannelBoard {
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget the previous slot.
    #[inline]
    pub fn clear(&mut self) {
        self.bcasts.clear();
        self.resolved = false;
    }

    /// Record that some node broadcasts `payload` on `ch` this slot.
    #[inline]
    pub fn add_broadcast(&mut self, ch: u64, payload: Payload) {
        debug_assert!(!self.resolved, "add_broadcast after resolve");
        self.bcasts.push((ch, payload));
    }

    /// Number of broadcasts recorded this slot.
    #[inline]
    pub fn broadcast_count(&self) -> usize {
        self.bcasts.len()
    }

    /// Sort the board; must be called before `outcome`.
    #[inline]
    pub fn resolve(&mut self) {
        self.bcasts.sort_unstable_by_key(|&(ch, _)| ch);
        self.resolved = true;
    }

    /// What does a listener on channel `ch` hear, given whether Eve jams it?
    #[inline]
    pub fn outcome(&self, ch: u64, jammed: bool) -> Feedback {
        debug_assert!(self.resolved, "outcome before resolve");
        if jammed {
            return Feedback::Noise;
        }
        let start = self.bcasts.partition_point(|&(c, _)| c < ch);
        let end = self.bcasts.partition_point(|&(c, _)| c <= ch);
        match end - start {
            0 => Feedback::Silence,
            1 => Feedback::Message(self.bcasts[start].1),
            _ => Feedback::Noise,
        }
    }

    /// Append the distinct channels that carried at least one transmission
    /// this slot (sorted ascending) — the public band activity an adaptive
    /// adversary's sensor sees. Must be called after `resolve`.
    pub fn busy_channels(&self, out: &mut Vec<u64>) {
        debug_assert!(self.resolved);
        let mut last: Option<u64> = None;
        for &(ch, _) in &self.bcasts {
            if last != Some(ch) {
                out.push(ch);
                last = Some(ch);
            }
        }
    }

    /// Number of channels carrying exactly one (un-jammed, hence decodable)
    /// broadcast — the "good channel" count of Claim 4.1.1, before accounting
    /// for jamming. Diagnostic for tests and experiments.
    pub fn singleton_channels(&self) -> usize {
        debug_assert!(self.resolved);
        let mut count = 0;
        let mut i = 0;
        while i < self.bcasts.len() {
            let ch = self.bcasts[i].0;
            let mut j = i + 1;
            while j < self.bcasts.len() && self.bcasts[j].0 == ch {
                j += 1;
            }
            if j - i == 1 {
                count += 1;
            }
            i = j;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_on_untouched_channel() {
        let mut b = ChannelBoard::new();
        b.clear();
        b.resolve();
        assert_eq!(b.outcome(3, false), Feedback::Silence);
    }

    #[test]
    fn single_broadcast_is_received() {
        let mut b = ChannelBoard::new();
        b.clear();
        b.add_broadcast(5, Payload::Data);
        b.resolve();
        assert_eq!(b.outcome(5, false), Feedback::Message(Payload::Data));
        assert_eq!(b.outcome(4, false), Feedback::Silence);
    }

    #[test]
    fn beacon_payload_is_distinguished() {
        let mut b = ChannelBoard::new();
        b.clear();
        b.add_broadcast(1, Payload::Beacon);
        b.resolve();
        assert_eq!(b.outcome(1, false), Feedback::Message(Payload::Beacon));
    }

    #[test]
    fn collision_is_noise() {
        let mut b = ChannelBoard::new();
        b.clear();
        b.add_broadcast(2, Payload::Data);
        b.add_broadcast(2, Payload::Data);
        b.resolve();
        assert_eq!(b.outcome(2, false), Feedback::Noise);
    }

    #[test]
    fn collision_of_data_and_beacon_is_noise() {
        let mut b = ChannelBoard::new();
        b.clear();
        b.add_broadcast(2, Payload::Data);
        b.add_broadcast(2, Payload::Beacon);
        b.resolve();
        assert_eq!(b.outcome(2, false), Feedback::Noise);
    }

    #[test]
    fn jamming_overrides_everything() {
        let mut b = ChannelBoard::new();
        b.clear();
        b.add_broadcast(7, Payload::Data);
        b.resolve();
        assert_eq!(
            b.outcome(7, true),
            Feedback::Noise,
            "jam over single broadcast"
        );
        assert_eq!(b.outcome(8, true), Feedback::Noise, "jam over silence");
    }

    #[test]
    fn channels_are_independent() {
        let mut b = ChannelBoard::new();
        b.clear();
        b.add_broadcast(0, Payload::Data);
        b.add_broadcast(1, Payload::Data);
        b.add_broadcast(1, Payload::Data);
        b.resolve();
        assert_eq!(b.outcome(0, false), Feedback::Message(Payload::Data));
        assert_eq!(b.outcome(1, false), Feedback::Noise);
        assert_eq!(b.outcome(2, false), Feedback::Silence);
    }

    #[test]
    fn unsorted_insertion_order_does_not_matter() {
        let mut b = ChannelBoard::new();
        b.clear();
        for ch in [9u64, 3, 9, 1, 3, 3] {
            b.add_broadcast(ch, Payload::Data);
        }
        b.resolve();
        assert_eq!(b.outcome(1, false), Feedback::Message(Payload::Data));
        assert_eq!(b.outcome(3, false), Feedback::Noise);
        assert_eq!(b.outcome(9, false), Feedback::Noise);
    }

    #[test]
    fn busy_channels_sorted_and_deduped() {
        let mut b = ChannelBoard::new();
        b.clear();
        for ch in [9u64, 3, 9, 1, 3] {
            b.add_broadcast(ch, Payload::Data);
        }
        b.resolve();
        let mut busy = Vec::new();
        b.busy_channels(&mut busy);
        assert_eq!(busy, vec![1, 3, 9]);
    }

    #[test]
    fn singleton_channel_count() {
        let mut b = ChannelBoard::new();
        b.clear();
        for ch in [1u64, 2, 2, 3, 4, 4, 4, 5] {
            b.add_broadcast(ch, Payload::Data);
        }
        b.resolve();
        // Singletons: 1, 3, 5.
        assert_eq!(b.singleton_channels(), 3);
    }

    #[test]
    fn clear_resets_the_slot() {
        let mut b = ChannelBoard::new();
        b.clear();
        b.add_broadcast(1, Payload::Data);
        b.resolve();
        b.clear();
        b.resolve();
        assert_eq!(b.outcome(1, false), Feedback::Silence);
        assert_eq!(b.broadcast_count(), 0);
    }
}
