//! Engine contract enforcement: malformed protocols must fail fast with a
//! clear panic, not corrupt a simulation.

use rcb_sim::{
    Action, BoundaryDecision, Coin, EngineConfig, Feedback, Protocol, ProtocolNode, Simulation,
    SlotProfile, Xoshiro256,
};

/// A protocol whose profile is whatever the test says.
struct Fixed {
    profile: SlotProfile,
}

struct Dummy;

impl Protocol for Fixed {
    type Node = Dummy;
    fn num_nodes(&self) -> u32 {
        4
    }
    fn segment(&mut self, _s: u64) -> SlotProfile {
        self.profile
    }
    fn make_node(&self, _id: u32, _src: bool) -> Dummy {
        Dummy
    }
}

impl ProtocolNode for Dummy {
    fn on_selected(&mut self, _p: &SlotProfile, _c: Coin, _r: &mut Xoshiro256) -> Action {
        Action::Idle
    }
    fn on_feedback(&mut self, _p: &SlotProfile, _f: Feedback) {}
    fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
        BoundaryDecision::Continue
    }
    fn is_informed(&self) -> bool {
        true
    }
}

fn base_profile() -> SlotProfile {
    SlotProfile {
        p1: 0.1,
        p2: 0.1,
        channels: 4,
        virt_channels: 4,
        round_len: 1,
        seg_len: 10,
        seg_major: 0,
        seg_minor: 0,
        step: 0,
    }
}

fn run_fixed(profile: SlotProfile) {
    let mut proto = Fixed { profile };
    Simulation::new(&mut proto)
        .config(EngineConfig::capped(100))
        .run(1);
}

#[test]
fn well_formed_profile_runs() {
    run_fixed(base_profile());
}

#[test]
#[should_panic(expected = "at least one slot")]
fn rejects_empty_segment() {
    run_fixed(SlotProfile {
        seg_len: 0,
        ..base_profile()
    });
}

#[test]
#[should_panic(expected = "round_len")]
fn rejects_zero_round_len() {
    run_fixed(SlotProfile {
        round_len: 0,
        ..base_profile()
    });
}

#[test]
#[should_panic(expected = "multiple of round length")]
fn rejects_partial_rounds() {
    run_fixed(SlotProfile {
        round_len: 3,
        seg_len: 10,
        virt_channels: 12,
        ..base_profile()
    });
}

#[test]
#[should_panic(expected = "at least one channel")]
fn rejects_zero_channels() {
    run_fixed(SlotProfile {
        channels: 0,
        virt_channels: 0,
        ..base_profile()
    });
}

#[test]
#[should_panic(expected = "invalid action probabilities")]
fn rejects_probability_mass_over_one() {
    run_fixed(SlotProfile {
        p1: 0.7,
        p2: 0.7,
        ..base_profile()
    });
}

#[test]
#[should_panic(expected = "invalid action probabilities")]
fn rejects_negative_probability() {
    run_fixed(SlotProfile {
        p1: -0.1,
        p2: 0.0,
        ..base_profile()
    });
}

#[test]
#[should_panic(expected = "virtual channels must equal physical")]
fn rejects_virtual_mismatch_without_rounds() {
    run_fixed(SlotProfile {
        virt_channels: 8,
        ..base_profile()
    });
}

#[test]
#[should_panic(expected = "virt_channels == channels * round_len")]
fn rejects_bad_round_geometry() {
    run_fixed(SlotProfile {
        round_len: 2,
        seg_len: 10,
        virt_channels: 5,
        ..base_profile()
    });
}

/// The engine must stop exactly at the slot cap even when the protocol's
/// segment would keep going.
#[test]
fn slot_cap_is_exact() {
    let mut proto = Fixed {
        profile: SlotProfile {
            seg_len: 1_000_000,
            ..base_profile()
        },
    };
    let out = Simulation::new(&mut proto)
        .config(EngineConfig::capped(137))
        .run(2);
    assert_eq!(out.slots, 137);
    assert!(!out.all_halted);
}

/// A cap landing mid-round must not execute buffered future sub-slots.
#[test]
fn slot_cap_mid_round_is_safe() {
    let mut proto = Fixed {
        profile: SlotProfile {
            round_len: 10,
            seg_len: 1_000,
            virt_channels: 40,
            ..base_profile()
        },
    };
    let out = Simulation::new(&mut proto)
        .config(EngineConfig::capped(15))
        .run(3);
    assert_eq!(out.slots, 15, "cap mid-round");
}
