//! Engine fuzzing: random (valid) protocol shapes against random adversaries
//! must uphold the engine's invariants for every configuration.
//!
//! Originally written against the `proptest` crate; this build environment
//! has no crates.io access, so the same fuzz space is explored as a
//! deterministic seeded randomized test using [`Xoshiro256`] for the
//! configuration draws. Case count matches the original config (64).

use rcb_sim::{
    Action, Adversary, BoundaryDecision, Coin, EngineConfig, Feedback, JamSet, Payload, Protocol,
    ProtocolNode, Simulation, SlotProfile, Xoshiro256,
};

/// A randomized-but-valid protocol: fixed profile, status-based toy nodes.
#[derive(Clone)]
struct FuzzProtocol {
    n: u32,
    profile: SlotProfile,
}

struct FuzzNode {
    informed: bool,
    heard: u64,
    halt_after_boundaries: u32,
    boundaries: u32,
}

impl Protocol for FuzzProtocol {
    type Node = FuzzNode;
    fn num_nodes(&self) -> u32 {
        self.n
    }
    fn segment(&mut self, _s: u64) -> SlotProfile {
        self.profile
    }
    fn make_node(&self, id: u32, is_source: bool) -> FuzzNode {
        FuzzNode {
            informed: is_source,
            heard: 0,
            // Nodes halt after a staggered number of boundaries, to exercise
            // active-set shrinkage.
            halt_after_boundaries: 2 + (id % 5),
            boundaries: 0,
        }
    }
}

impl ProtocolNode for FuzzNode {
    fn on_selected(&mut self, p: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
        let ch = rng.gen_range(p.virt_channels);
        match coin {
            Coin::One => Action::Listen { ch },
            Coin::Two if self.informed => Action::Broadcast {
                ch,
                payload: Payload::Data,
            },
            Coin::Two => Action::Idle,
        }
    }
    fn on_feedback(&mut self, _p: &SlotProfile, fb: Feedback) {
        self.heard += 1;
        if fb == Feedback::Message(Payload::Data) {
            self.informed = true;
        }
    }
    fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
        self.boundaries += 1;
        if self.boundaries >= self.halt_after_boundaries {
            BoundaryDecision::Halt
        } else {
            BoundaryDecision::Continue
        }
    }
    fn is_informed(&self) -> bool {
        self.informed
    }
}

/// A fuzz adversary cycling through representations.
struct FuzzAdversary {
    t: u64,
    mode: u8,
    rng: Xoshiro256,
}

impl Adversary for FuzzAdversary {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        match (slot + self.mode as u64) % 5 {
            0 => JamSet::Empty,
            1 => JamSet::All,
            2 => JamSet::Prefix(self.rng.gen_range(channels + 1)),
            3 => JamSet::Window {
                start: self.rng.gen_range(channels),
                len: self.rng.gen_range(channels + 1),
            },
            _ => {
                let k = self.rng.gen_range(channels.min(8) + 1);
                JamSet::from_channels((0..k).map(|_| self.rng.gen_range(channels)).collect())
            }
        }
    }
    fn budget(&self) -> u64 {
        self.t
    }
}

/// Draw a random-but-valid slot profile (same space as the original
/// proptest `arb_profile` strategy).
fn arb_profile(rng: &mut Xoshiro256) -> SlotProfile {
    let ch = 1 + rng.gen_range(5); // channels (log2-ish small)
    let round_len = 1 + rng.gen_range(3) as u32; // round_len
    let rounds = 1 + rng.gen_range(19); // rounds per segment
    let p1 = rng.next_f64() * 0.5;
    let p2 = rng.next_f64() * 0.5;
    SlotProfile {
        p1,
        p2,
        channels: ch,
        virt_channels: if round_len == 1 {
            ch
        } else {
            ch * round_len as u64
        },
        round_len,
        seg_len: rounds * round_len as u64,
        seg_major: 0,
        seg_minor: 0,
        step: 0,
    }
}

/// For any valid configuration: energy ledgers balance, Eve's budget is
/// respected, node outcomes are internally consistent, and the run is
/// deterministic.
#[test]
fn engine_invariants_hold_under_fuzz() {
    let mut draw = Xoshiro256::seeded(0xF0221);
    for case in 0..64 {
        let profile = arb_profile(&mut draw);
        let n = 2 + draw.gen_range(18) as u32;
        let budget = draw.gen_range(5_000);
        let mode = draw.gen_range(5) as u8;
        let seed = draw.gen_range(10_000);
        let cap_rounds = 1 + draw.gen_range(49);

        let cap = cap_rounds * profile.round_len as u64;
        let run_once = || {
            let mut proto = FuzzProtocol { n, profile };
            let mut adv = FuzzAdversary {
                t: budget,
                mode,
                rng: Xoshiro256::seeded(seed),
            };
            Simulation::new(&mut proto)
                .adversary(&mut adv)
                .config(EngineConfig::capped(cap))
                .run(seed)
        };
        let out = run_once();

        // Budget and ledger invariants.
        assert!(out.eve_spent <= budget, "case {case}: Eve overspent");
        let listens: u64 = out.nodes.iter().map(|x| x.listen_cost).sum();
        let bcasts: u64 = out.nodes.iter().map(|x| x.broadcast_cost).sum();
        assert_eq!(listens, out.totals.listens, "case {case}");
        assert_eq!(bcasts, out.totals.broadcasts, "case {case}");
        let heard = out.totals.heard_silence + out.totals.heard_message + out.totals.heard_noise;
        assert_eq!(heard, out.totals.listens, "case {case}");

        // Slot accounting.
        assert!(out.slots <= cap, "case {case}");

        // Node outcome consistency.
        assert_eq!(out.nodes[0].informed_at, Some(0), "case {case}");
        for node in &out.nodes {
            if let Some(h) = node.halted_at {
                assert!(h < out.slots, "case {case}");
            }
        }

        // Determinism.
        let out2 = run_once();
        assert_eq!(out.slots, out2.slots, "case {case}");
        assert_eq!(out.eve_spent, out2.eve_spent, "case {case}");
        assert_eq!(out.totals, out2.totals, "case {case}");
        assert_eq!(out.max_cost(), out2.max_cost(), "case {case}");
    }
}
