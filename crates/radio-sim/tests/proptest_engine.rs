//! Engine fuzzing: random (valid) protocol shapes against random adversaries
//! must uphold the engine's invariants for every configuration.

use proptest::prelude::*;
use rcb_sim::{
    run, Action, Adversary, BoundaryDecision, Coin, EngineConfig, Feedback, JamSet, Payload,
    Protocol, ProtocolNode, SlotProfile, Xoshiro256,
};

/// A randomized-but-valid protocol: fixed profile, status-based toy nodes.
#[derive(Clone)]
struct FuzzProtocol {
    n: u32,
    profile: SlotProfile,
}

struct FuzzNode {
    informed: bool,
    heard: u64,
    halt_after_boundaries: u32,
    boundaries: u32,
}

impl Protocol for FuzzProtocol {
    type Node = FuzzNode;
    fn num_nodes(&self) -> u32 {
        self.n
    }
    fn segment(&mut self, _s: u64) -> SlotProfile {
        self.profile
    }
    fn make_node(&self, id: u32, is_source: bool) -> FuzzNode {
        FuzzNode {
            informed: is_source,
            heard: 0,
            // Nodes halt after a staggered number of boundaries, to exercise
            // active-set shrinkage.
            halt_after_boundaries: 2 + (id % 5),
            boundaries: 0,
        }
    }
}

impl ProtocolNode for FuzzNode {
    fn on_selected(&mut self, p: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
        let ch = rng.gen_range(p.virt_channels);
        match coin {
            Coin::One => Action::Listen { ch },
            Coin::Two if self.informed => Action::Broadcast {
                ch,
                payload: Payload::Data,
            },
            Coin::Two => Action::Idle,
        }
    }
    fn on_feedback(&mut self, _p: &SlotProfile, fb: Feedback) {
        self.heard += 1;
        if fb == Feedback::Message(Payload::Data) {
            self.informed = true;
        }
    }
    fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
        self.boundaries += 1;
        if self.boundaries >= self.halt_after_boundaries {
            BoundaryDecision::Halt
        } else {
            BoundaryDecision::Continue
        }
    }
    fn is_informed(&self) -> bool {
        self.informed
    }
}

/// A fuzz adversary cycling through representations.
struct FuzzAdversary {
    t: u64,
    mode: u8,
    rng: Xoshiro256,
}

impl Adversary for FuzzAdversary {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        match (slot + self.mode as u64) % 5 {
            0 => JamSet::Empty,
            1 => JamSet::All,
            2 => JamSet::Prefix(self.rng.gen_range(channels + 1)),
            3 => JamSet::Window {
                start: self.rng.gen_range(channels),
                len: self.rng.gen_range(channels + 1),
            },
            _ => {
                let k = self.rng.gen_range(channels.min(8) + 1);
                JamSet::from_channels((0..k).map(|_| self.rng.gen_range(channels)).collect())
            }
        }
    }
    fn budget(&self) -> u64 {
        self.t
    }
}

fn arb_profile() -> impl Strategy<Value = SlotProfile> {
    (
        1u64..6,     // channels (log2-ish small)
        1u32..4,     // round_len
        1u64..20,    // rounds per segment
        0.0f64..0.5, // p1
        0.0f64..0.5, // p2
    )
        .prop_map(|(ch, round_len, rounds, p1, p2)| SlotProfile {
            p1,
            p2,
            channels: ch,
            virt_channels: if round_len == 1 {
                ch
            } else {
                ch * round_len as u64
            },
            round_len,
            seg_len: rounds * round_len as u64,
            seg_major: 0,
            seg_minor: 0,
            step: 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any valid configuration: energy ledgers balance, Eve's budget is
    /// respected, node outcomes are internally consistent, and the run is
    /// deterministic.
    #[test]
    fn engine_invariants_hold_under_fuzz(
        profile in arb_profile(),
        n in 2u32..20,
        budget in 0u64..5_000,
        mode in 0u8..5,
        seed in 0u64..10_000,
        cap_rounds in 1u64..50,
    ) {
        let cap = cap_rounds * profile.round_len as u64;
        let run_once = || {
            let mut proto = FuzzProtocol { n, profile };
            let mut adv = FuzzAdversary { t: budget, mode, rng: Xoshiro256::seeded(seed) };
            run(&mut proto, &mut adv, seed, &EngineConfig::capped(cap))
        };
        let out = run_once();

        // Budget and ledger invariants.
        prop_assert!(out.eve_spent <= budget);
        let listens: u64 = out.nodes.iter().map(|x| x.listen_cost).sum();
        let bcasts: u64 = out.nodes.iter().map(|x| x.broadcast_cost).sum();
        prop_assert_eq!(listens, out.totals.listens);
        prop_assert_eq!(bcasts, out.totals.broadcasts);
        let heard = out.totals.heard_silence + out.totals.heard_message + out.totals.heard_noise;
        prop_assert_eq!(heard, out.totals.listens);

        // Slot accounting.
        prop_assert!(out.slots <= cap);

        // Node outcome consistency.
        prop_assert_eq!(out.nodes[0].informed_at, Some(0));
        for node in &out.nodes {
            if let Some(h) = node.halted_at {
                prop_assert!(h < out.slots);
            }
        }

        // Determinism.
        let out2 = run_once();
        prop_assert_eq!(out.slots, out2.slots);
        prop_assert_eq!(out.eve_spent, out2.eve_spent);
        prop_assert_eq!(out.totals, out2.totals);
        prop_assert_eq!(out.max_cost(), out2.max_cost());
    }
}
