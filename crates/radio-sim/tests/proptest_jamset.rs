//! Property tests for jam-set representations and the subset sampler.

use proptest::prelude::*;
use rcb_sim::{bernoulli_subset, JamSet, Xoshiro256};

/// Materialize a jam set as an explicit membership vector.
fn members(set: &JamSet, channels: u64) -> Vec<bool> {
    (0..channels).map(|ch| set.contains(ch, channels)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `count` always equals the number of `contains` members, for every
    /// representation.
    #[test]
    fn count_matches_membership_list(
        channels in 1u64..200,
        raw in proptest::collection::vec(0u64..250, 0..64),
    ) {
        let set = JamSet::from_channels(raw);
        let m = members(&set, channels);
        prop_assert_eq!(set.count(channels), m.iter().filter(|&&b| b).count() as u64);
    }

    /// List and Mask representations of the same membership agree on every
    /// query.
    #[test]
    fn list_and_mask_agree(
        channels in 1u64..150,
        raw in proptest::collection::vec(0u64..150, 0..64),
    ) {
        let mut in_range: Vec<u64> = raw.iter().copied().filter(|&c| c < channels).collect();
        in_range.sort_unstable();
        in_range.dedup();
        let list = JamSet::from_channels(in_range.clone());
        let mask = JamSet::from_predicate(channels, |ch| in_range.binary_search(&ch).is_ok());
        prop_assert_eq!(list.count(channels), mask.count(channels));
        for ch in 0..channels {
            prop_assert_eq!(list.contains(ch, channels), mask.contains(ch, channels));
        }
    }

    /// Window membership equals its explicit modular-interval definition.
    #[test]
    fn window_matches_modular_interval(
        channels in 1u64..100,
        start in 0u64..300,
        len in 0u64..300,
    ) {
        let set = JamSet::Window { start, len };
        let s = start % channels;
        for ch in 0..channels {
            let offset = (ch + channels - s) % channels;
            prop_assert_eq!(
                set.contains(ch, channels),
                offset < len.min(channels),
                "ch {} start {} len {} channels {}", ch, start, len, channels
            );
        }
    }

    /// Truncation: never exceeds the limit, keeps only original members, and
    /// keeps exactly the lowest-indexed ones.
    #[test]
    fn truncate_keeps_lowest_members(
        channels in 1u64..120,
        raw in proptest::collection::vec(0u64..120, 0..48),
        limit in 0u64..64,
    ) {
        let set = JamSet::from_channels(raw);
        let before = members(&set, channels);
        let truncated = set.clone().truncate(limit, channels);
        let after = members(&truncated, channels);
        let kept = truncated.count(channels);
        prop_assert!(kept <= limit.min(set.count(channels)));
        // No new members appear.
        for ch in 0..channels as usize {
            prop_assert!(!after[ch] || before[ch], "channel {ch} appeared from nowhere");
        }
        // Lowest-first: every kept member is below every dropped member.
        if let (Some(max_kept), Some(min_dropped)) = (
            (0..channels).filter(|&c| after[c as usize]).max(),
            (0..channels).filter(|&c| before[c as usize] && !after[c as usize]).min(),
        ) {
            prop_assert!(max_kept < min_dropped);
        }
    }

    /// All/Prefix truncation agrees with the generic rule.
    #[test]
    fn truncate_all_and_prefix(channels in 1u64..100, limit in 0u64..150) {
        let t_all = JamSet::All.truncate(limit, channels);
        prop_assert_eq!(t_all.count(channels), limit.min(channels));
        let t_prefix = JamSet::Prefix(channels).truncate(limit, channels);
        prop_assert_eq!(t_prefix.count(channels), limit.min(channels));
    }

    /// The sampler's output is always sorted, unique, and in range.
    #[test]
    fn sampler_output_well_formed(
        m in 0usize..2000,
        p in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let mut rng = Xoshiro256::seeded(seed);
        let mut out = Vec::new();
        bernoulli_subset(&mut rng, m, p, &mut out);
        prop_assert!(out.len() <= m);
        for w in out.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        if let Some(&last) = out.last() {
            prop_assert!((last as usize) < m);
        }
    }
}
