//! Property tests for jam-set representations and the subset sampler.
//!
//! Originally written against the `proptest` crate; this build environment
//! has no crates.io access, so the same properties are exercised as
//! deterministic seeded randomized tests driven by the simulator's own
//! [`Xoshiro256`] generator. Case counts match the original configs.

use rcb_sim::{bernoulli_subset, JamSet, Xoshiro256};

const CASES: u64 = 128;

/// Materialize a jam set as an explicit membership vector.
fn members(set: &JamSet, channels: u64) -> Vec<bool> {
    (0..channels).map(|ch| set.contains(ch, channels)).collect()
}

/// Draw a random raw channel list: `0..max_len` entries in `0..bound`.
fn raw_channels(rng: &mut Xoshiro256, bound: u64, max_len: u64) -> Vec<u64> {
    let len = rng.gen_range(max_len);
    (0..len).map(|_| rng.gen_range(bound)).collect()
}

/// `count` always equals the number of `contains` members, for every
/// representation.
#[test]
fn count_matches_membership_list() {
    let mut rng = Xoshiro256::seeded(0xAE51);
    for _ in 0..CASES {
        let channels = 1 + rng.gen_range(199);
        let raw = raw_channels(&mut rng, 250, 64);
        let set = JamSet::from_channels(raw);
        let m = members(&set, channels);
        assert_eq!(
            set.count(channels),
            m.iter().filter(|&&b| b).count() as u64,
            "{set:?} over {channels} channels"
        );
    }
}

/// List and Mask representations of the same membership agree on every query.
#[test]
fn list_and_mask_agree() {
    let mut rng = Xoshiro256::seeded(0xAE52);
    for _ in 0..CASES {
        let channels = 1 + rng.gen_range(149);
        let raw = raw_channels(&mut rng, 150, 64);
        let mut in_range: Vec<u64> = raw.iter().copied().filter(|&c| c < channels).collect();
        in_range.sort_unstable();
        in_range.dedup();
        let list = JamSet::from_channels(in_range.clone());
        let mask = JamSet::from_predicate(channels, |ch| in_range.binary_search(&ch).is_ok());
        assert_eq!(list.count(channels), mask.count(channels));
        for ch in 0..channels {
            assert_eq!(list.contains(ch, channels), mask.contains(ch, channels));
        }
    }
}

/// Window membership equals its explicit modular-interval definition.
#[test]
fn window_matches_modular_interval() {
    let mut rng = Xoshiro256::seeded(0xAE53);
    for _ in 0..CASES {
        let channels = 1 + rng.gen_range(99);
        let start = rng.gen_range(300);
        let len = rng.gen_range(300);
        let set = JamSet::Window { start, len };
        let s = start % channels;
        for ch in 0..channels {
            let offset = (ch + channels - s) % channels;
            assert_eq!(
                set.contains(ch, channels),
                offset < len.min(channels),
                "ch {ch} start {start} len {len} channels {channels}"
            );
        }
    }
}

/// Truncation: never exceeds the limit, keeps only original members, and
/// keeps exactly the lowest-indexed ones.
#[test]
fn truncate_keeps_lowest_members() {
    let mut rng = Xoshiro256::seeded(0xAE54);
    for _ in 0..CASES {
        let channels = 1 + rng.gen_range(119);
        let raw = raw_channels(&mut rng, 120, 48);
        let limit = rng.gen_range(64);
        let set = JamSet::from_channels(raw);
        let before = members(&set, channels);
        let truncated = set.clone().truncate(limit, channels);
        let after = members(&truncated, channels);
        let kept = truncated.count(channels);
        assert!(kept <= limit.min(set.count(channels)));
        // No new members appear.
        for ch in 0..channels as usize {
            assert!(
                !after[ch] || before[ch],
                "channel {ch} appeared from nowhere"
            );
        }
        // Lowest-first: every kept member is below every dropped member.
        if let (Some(max_kept), Some(min_dropped)) = (
            (0..channels).filter(|&c| after[c as usize]).max(),
            (0..channels)
                .filter(|&c| before[c as usize] && !after[c as usize])
                .min(),
        ) {
            assert!(max_kept < min_dropped);
        }
    }
}

/// All/Prefix truncation agrees with the generic rule.
#[test]
fn truncate_all_and_prefix() {
    let mut rng = Xoshiro256::seeded(0xAE55);
    for _ in 0..CASES {
        let channels = 1 + rng.gen_range(99);
        let limit = rng.gen_range(150);
        let t_all = JamSet::All.truncate(limit, channels);
        assert_eq!(t_all.count(channels), limit.min(channels));
        let t_prefix = JamSet::Prefix(channels).truncate(limit, channels);
        assert_eq!(t_prefix.count(channels), limit.min(channels));
    }
}

/// The sampler's output is always sorted, unique, and in range.
#[test]
fn sampler_output_well_formed() {
    let mut rng = Xoshiro256::seeded(0xAE56);
    for _ in 0..CASES {
        let m = rng.gen_range(2000) as usize;
        let p = rng.next_f64();
        let seed = rng.gen_range(10_000);
        let mut sample_rng = Xoshiro256::seeded(seed);
        let mut out = Vec::new();
        bernoulli_subset(&mut sample_rng, m, p, &mut out);
        assert!(out.len() <= m);
        for w in out.windows(2) {
            assert!(w[0] < w[1]);
        }
        if let Some(&last) = out.last() {
            assert!((last as usize) < m);
        }
    }
}
