//! # rcb-harness — parallel Monte-Carlo experiment runner
//!
//! Describes trials as plain data ([`TrialSpec`] = protocol × adversary ×
//! topology × seed), runs them in parallel across CPU cores (std scoped
//! threads; work-stealing over an atomic cursor), and distills each run
//! into a [`TrialResult`].
//!
//! The data-description layer exists so that sweeps are declarative: a
//! workload is a list of `TrialSpec`s, and every trial is reproducible from
//! its spec alone — the spec carries the master seed, and node streams,
//! engine sampling, adversary randomness, and topology generation all
//! derive from it (see `rcb_sim::derive_seed`). [`ProtocolKind`],
//! [`AdversaryKind`], and [`TopologyKind`] are `Clone + Send` enums, so
//! grids can be built with ordinary iterator code and shipped across
//! threads; [`AdversaryKind::is_adaptive`] marks the execution-observing
//! strategies, which [`run_trial`] mounts into the adaptive seat of the
//! engine's unified `Eve` enum automatically — every trial is one
//! `rcb_sim::Simulation` build. Per-trial knobs beyond the spec (a base
//! engine config, an observer) go through [`TrialOptions`] and
//! [`run_trial_opts`].
//!
//! Worker-count resolution is shared by every CLI through
//! [`resolve_threads`]: an explicit `--threads K` wins, otherwise the
//! `RCB_THREADS` environment variable, otherwise one worker per available
//! core.
//!
//! ```
//! use rcb_harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};
//!
//! // A 2-cell sweep: MultiCast vs the classic reactive jammer and its
//! // windowed generalization, one seed each.
//! let specs: Vec<TrialSpec> = [
//!     AdversaryKind::Reactive { t: 5_000, max_channels: 8 },
//!     AdversaryKind::ReactiveWindow { t: 5_000, window: 4, max_channels: 8, threshold: 2 },
//! ]
//! .into_iter()
//! .map(|adv| TrialSpec::new(
//!     ProtocolKind::MultiCast { n: 16, params: Default::default() },
//!     adv,
//!     11,
//! ))
//! .collect();
//! for r in run_trials(&specs, 0) {
//!     assert!(r.completed && r.safety_violations == 0);
//! }
//! ```
//!
//! The campaign layer (`rcb-campaign`) builds on this crate for streaming
//! aggregation over many seeds; use the harness directly when you need
//! per-trial results or a custom observer.

pub mod report;
pub mod runner;
pub mod spec;

pub use report::{sweep_by, SweepPoint};
pub use runner::{
    batch_supported, cell_trial_seed, resolve_threads, run_trial, run_trial_batch, run_trial_opts,
    run_trial_telemetry, run_trials, TrialOptions, TrialResult,
};
pub use spec::{
    AdversaryKind, ProtocolKind, ScheduleEventKind, ScheduleSpec, TopologyKind, TrialSpec,
};
