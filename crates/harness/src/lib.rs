//! # rcb-harness — parallel Monte-Carlo experiment runner
//!
//! Describes trials as plain data ([`TrialSpec`] = protocol × adversary ×
//! topology × seed), runs them — in parallel across CPU cores via crossbeam scoped
//! threads — and aggregates [`TrialResult`]s into the series and tables the
//! experiments in EXPERIMENTS.md report.
//!
//! The data-description layer exists so that sweeps are declarative: an
//! experiment is a list of `TrialSpec`s, and every trial is reproducible
//! from its spec alone (the spec carries the master seed; all randomness
//! derives from it).

pub mod report;
pub mod runner;
pub mod spec;

pub use report::{sweep_by, SweepPoint};
pub use runner::{resolve_threads, run_trial, run_trial_with_engine, run_trials, TrialResult};
pub use spec::{AdversaryKind, ProtocolKind, TopologyKind, TrialSpec};
