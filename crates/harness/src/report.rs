//! Aggregation of trial results into sweep series.

use crate::runner::TrialResult;
use rcb_stats::Summary;

/// Aggregated statistics at one point of a parameter sweep (one `x` value,
/// many seeds).
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The swept parameter value (e.g. `T`, `C`, or `n`).
    pub x: f64,
    /// Completion-time statistics (slots).
    pub time: Summary,
    /// Max-per-node-cost statistics (energy units).
    pub max_cost: Summary,
    /// Mean-per-node-cost statistics.
    pub mean_cost: Summary,
    /// Eve's actual spend statistics.
    pub eve_spent: Summary,
    /// Fraction of trials that completed.
    pub completion_rate: f64,
    /// Total safety violations across trials (must be 0).
    pub safety_violations: usize,
}

impl SweepPoint {
    /// Aggregate a batch of results that share one sweep value `x`.
    ///
    /// # Panics
    /// Panics on an empty batch.
    pub fn aggregate(x: f64, results: &[TrialResult]) -> SweepPoint {
        assert!(!results.is_empty(), "cannot aggregate zero trials");
        let times: Vec<f64> = results.iter().map(|r| r.completion_time() as f64).collect();
        let max_costs: Vec<f64> = results.iter().map(|r| r.max_cost as f64).collect();
        let mean_costs: Vec<f64> = results.iter().map(|r| r.mean_cost).collect();
        let eve: Vec<f64> = results.iter().map(|r| r.eve_spent as f64).collect();
        let completed = results.iter().filter(|r| r.completed).count();
        SweepPoint {
            x,
            time: Summary::of(&times).expect("nonempty"),
            max_cost: Summary::of(&max_costs).expect("nonempty"),
            mean_cost: Summary::of(&mean_costs).expect("nonempty"),
            eve_spent: Summary::of(&eve).expect("nonempty"),
            completion_rate: completed as f64 / results.len() as f64,
            safety_violations: results.iter().map(|r| r.safety_violations).sum(),
        }
    }
}

/// Group results by a key and aggregate each group into a [`SweepPoint`],
/// sorted by `x`.
pub fn sweep_by<F>(results: &[TrialResult], key: F) -> Vec<SweepPoint>
where
    F: Fn(&TrialResult) -> f64,
{
    let mut groups: Vec<(f64, Vec<TrialResult>)> = Vec::new();
    for r in results {
        let x = key(r);
        match groups.iter_mut().find(|(gx, _)| (*gx - x).abs() < 1e-9) {
            Some((_, v)) => v.push(r.clone()),
            None => groups.push((x, vec![r.clone()])),
        }
    }
    groups.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN sweep key"));
    groups
        .iter()
        .map(|(x, v)| SweepPoint::aggregate(*x, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(budget: u64, slots: u64, max_cost: u64, completed: bool) -> TrialResult {
        TrialResult {
            protocol: "test",
            adversary: "test",
            n: 16,
            budget,
            seed: 0,
            slots,
            completed,
            all_informed: completed,
            all_informed_at: Some(slots / 2),
            last_halt: if completed { Some(slots - 1) } else { None },
            max_cost,
            mean_cost: max_cost as f64 / 2.0,
            source_cost: max_cost / 2,
            eve_spent: budget,
            safety_violations: 0,
            helper_phases: Vec::new(),
            crashed: 0,
            survivors: 16,
            survivors_informed: if completed { 16 } else { 8 },
            timeline: Vec::new(),
        }
    }

    #[test]
    fn aggregate_computes_stats() {
        let rs = vec![
            fake(100, 10, 4, true),
            fake(100, 20, 8, true),
            fake(100, 30, 12, true),
        ];
        let p = SweepPoint::aggregate(100.0, &rs);
        assert_eq!(p.time.n, 3);
        assert_eq!(p.time.mean, 20.0);
        assert_eq!(p.max_cost.mean, 8.0);
        assert_eq!(p.completion_rate, 1.0);
        assert_eq!(p.safety_violations, 0);
    }

    #[test]
    fn aggregate_counts_incomplete_trials() {
        // An incomplete trial reports its informed time (41) instead of a
        // halt time and drags the completion rate down.
        let rs = vec![fake(100, 10, 4, true), fake(100, 100, 8, false)];
        let p = SweepPoint::aggregate(100.0, &rs);
        assert!((p.completion_rate - 0.5).abs() < 1e-12);
        assert_eq!(p.time.mean, (10.0 + 51.0) / 2.0);
    }

    #[test]
    fn sweep_groups_and_sorts() {
        let rs = vec![
            fake(200, 20, 2, true),
            fake(100, 10, 1, true),
            fake(200, 40, 4, true),
        ];
        let sweep = sweep_by(&rs, |r| r.budget as f64);
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].x, 100.0);
        assert_eq!(sweep[1].x, 200.0);
        assert_eq!(sweep[1].time.n, 2);
        assert_eq!(sweep[1].time.mean, 30.0);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn aggregate_rejects_empty() {
        SweepPoint::aggregate(1.0, &[]);
    }

    #[test]
    fn completion_time_prefers_halt() {
        let r = fake(0, 100, 1, true);
        assert_eq!(r.completion_time(), 100); // last_halt 99 + 1
        let mut r2 = fake(0, 100, 1, false);
        r2.all_informed_at = Some(40);
        assert_eq!(r2.completion_time(), 41);
        r2.all_informed_at = None;
        assert_eq!(r2.completion_time(), 100, "falls back to slots");
    }
}
