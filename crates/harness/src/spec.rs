//! Declarative descriptions of protocols, adversaries, and trials.

use rcb_core::{AdvParams, CoreParams, McParams};

/// Which protocol to run, with its parameters. Plain data: `Clone + Send`,
/// so sweeps can be built declaratively and dispatched across threads.
#[derive(Clone, Debug)]
pub enum ProtocolKind {
    /// `MultiCastCore` (knows `n` and `T`).
    Core { n: u64, t: u64, params: CoreParams },
    /// `MultiCast` (knows `n`).
    MultiCast { n: u64, params: McParams },
    /// `MultiCast(C)` on `c` channels.
    MultiCastC { n: u64, c: u64, params: McParams },
    /// `MultiCastAdv` (knows nothing). A `channel_cap` inside `params` makes
    /// it `MultiCastAdv(C)`.
    Adv { n: u64, params: AdvParams },
    /// Naive multi-channel epidemic (baseline; never halts).
    Naive { n: u64, act_prob: f64 },
    /// Naive epidemic with an explicit channel count (for the channel-count
    /// ablation E14).
    NaiveConfig {
        n: u64,
        channels: u64,
        act_prob: f64,
    },
    /// Single-channel resource-competitive baseline (SPAA'14 bounds).
    SingleChannel { n: u64, params: McParams },
    /// Classical `Decay` (baseline; never halts).
    Decay { n: u64 },
    /// Relay-capable multi-hop broadcast (informed nodes re-run the sender
    /// schedule; never halts — run until all reachable nodes are informed).
    MultiHop { n: u64, channels: u64, p: f64 },
    /// Multi-message broadcast: `k` concurrent payloads, partial holders
    /// relay a random known message (never halts — run until all reachable
    /// nodes hold all `k` messages).
    MultiMessage {
        n: u64,
        k: u32,
        channels: u64,
        p: f64,
    },
}

impl ProtocolKind {
    /// Network size of the trial.
    pub fn n(&self) -> u64 {
        match *self {
            ProtocolKind::Core { n, .. }
            | ProtocolKind::MultiCast { n, .. }
            | ProtocolKind::MultiCastC { n, .. }
            | ProtocolKind::Adv { n, .. }
            | ProtocolKind::Naive { n, .. }
            | ProtocolKind::NaiveConfig { n, .. }
            | ProtocolKind::SingleChannel { n, .. }
            | ProtocolKind::Decay { n }
            | ProtocolKind::MultiHop { n, .. }
            | ProtocolKind::MultiMessage { n, .. } => n,
        }
    }

    /// Short name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Core { .. } => "MultiCastCore",
            ProtocolKind::MultiCast { .. } => "MultiCast",
            ProtocolKind::MultiCastC { .. } => "MultiCast(C)",
            ProtocolKind::Adv { n: _, params } => {
                if params.channel_cap.is_some() {
                    "MultiCastAdv(C)"
                } else {
                    "MultiCastAdv"
                }
            }
            ProtocolKind::Naive { .. } | ProtocolKind::NaiveConfig { .. } => "NaiveEpidemic",
            ProtocolKind::SingleChannel { .. } => "SingleChannelRcb",
            ProtocolKind::Decay { .. } => "Decay",
            ProtocolKind::MultiHop { .. } => "MultiHopCast",
            ProtocolKind::MultiMessage { .. } => "MultiMessageCast",
        }
    }

    /// Full parameter rendering for `rcb describe`: the structural knobs
    /// that distinguish cells within a scenario (protocol-internal tuning
    /// parameters keep their defaults unless a variant carries them).
    pub fn detail(&self) -> String {
        match self {
            ProtocolKind::Core { n, t, .. } => format!("MultiCastCore{{n={n}, T={t}}}"),
            ProtocolKind::MultiCast { n, .. } => format!("MultiCast{{n={n}}}"),
            ProtocolKind::MultiCastC { n, c, .. } => format!("MultiCast(C){{n={n}, C={c}}}"),
            ProtocolKind::Adv { n, params } => match params.channel_cap {
                Some(c) => format!("MultiCastAdv(C){{n={n}, C={c}, alpha={}}}", params.alpha),
                None => format!("MultiCastAdv{{n={n}, alpha={}}}", params.alpha),
            },
            ProtocolKind::Naive { n, act_prob } => {
                format!("NaiveEpidemic{{n={n}, act_prob={act_prob}}}")
            }
            ProtocolKind::NaiveConfig {
                n,
                channels,
                act_prob,
            } => format!("NaiveEpidemic{{n={n}, channels={channels}, act_prob={act_prob}}}"),
            ProtocolKind::SingleChannel { n, .. } => format!("SingleChannelRcb{{n={n}}}"),
            ProtocolKind::Decay { n } => format!("Decay{{n={n}}}"),
            ProtocolKind::MultiHop { n, channels, p } => {
                format!("MultiHopCast{{n={n}, channels={channels}, p={p}}}")
            }
            ProtocolKind::MultiMessage { n, k, channels, p } => {
                format!("MultiMessageCast{{n={n}, k={k}, channels={channels}, p={p}}}")
            }
        }
    }

    /// Protocols without termination detection are run until all nodes are
    /// informed rather than until all halt.
    pub fn never_halts(&self) -> bool {
        matches!(
            self,
            ProtocolKind::Naive { .. }
                | ProtocolKind::NaiveConfig { .. }
                | ProtocolKind::Decay { .. }
                | ProtocolKind::MultiHop { .. }
                | ProtocolKind::MultiMessage { .. }
        )
    }
}

/// Which connectivity topology a trial runs over. Plain data like
/// [`ProtocolKind`]; seeds for the random generators are derived from the
/// trial's master seed (see [`TopologyKind::build`]), so a spec stays fully
/// reproducible and every trial of a cell gets an independent graph.
#[derive(Clone, Debug)]
pub enum TopologyKind {
    /// The paper's single-hop model (every pair connected). The default;
    /// dispatches to the topology-free engine path.
    Complete,
    /// The path `0 – 1 – … – (n−1)`.
    Line,
    /// Row-major grid, `cols` nodes per row.
    Grid { cols: u32 },
    /// Random geometric graph at the given radius (unit square).
    RandomGeometric { radius: f64 },
    /// Per-round edge churn over a static base topology.
    Dynamic {
        base: Box<TopologyKind>,
        p_down: f64,
    },
}

/// Reserved stream ids for topology randomness (the adversary uses
/// `1_000_003`).
const TOPOLOGY_STREAM: u64 = 1_000_004;
const CHURN_STREAM: u64 = 1_000_005;

impl TopologyKind {
    /// Short name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::Complete => "complete",
            TopologyKind::Line => "line",
            TopologyKind::Grid { .. } => "grid",
            TopologyKind::RandomGeometric { .. } => "random-geometric",
            TopologyKind::Dynamic { .. } => "dynamic",
        }
    }

    /// Is this the single-hop model?
    pub fn is_complete(&self) -> bool {
        matches!(self, TopologyKind::Complete)
    }

    /// Full parameter rendering for `rcb describe` (generator knobs
    /// included, recursively for [`Dynamic`](Self::Dynamic)).
    pub fn detail(&self) -> String {
        match self {
            TopologyKind::Complete => "complete".into(),
            TopologyKind::Line => "line".into(),
            TopologyKind::Grid { cols } => format!("grid{{cols={cols}}}"),
            TopologyKind::RandomGeometric { radius } => {
                format!("random-geometric{{radius={radius:.4}}}")
            }
            TopologyKind::Dynamic { base, p_down } => {
                format!("dynamic{{base={}, p_down={p_down}}}", base.detail())
            }
        }
    }

    /// Realize the engine-level [`rcb_sim::Topology`], deriving generator
    /// seeds from the trial's master seed.
    pub fn build(&self, master_seed: u64) -> rcb_sim::Topology {
        use rcb_sim::derive_seed;
        match self {
            TopologyKind::Complete => rcb_sim::Topology::Complete,
            TopologyKind::Line => rcb_sim::Topology::Line,
            TopologyKind::Grid { cols } => rcb_sim::Topology::Grid { cols: *cols },
            TopologyKind::RandomGeometric { radius } => rcb_sim::Topology::RandomGeometric {
                radius: *radius,
                seed: derive_seed(master_seed, TOPOLOGY_STREAM),
            },
            TopologyKind::Dynamic { base, p_down } => rcb_sim::Topology::Dynamic {
                base: Box::new(base.build(master_seed)),
                p_down: *p_down,
                seed: derive_seed(master_seed, CHURN_STREAM),
            },
        }
    }
}

/// Which adversary to run against, with its budget. The `seed` for strategy
/// randomness is derived from the trial's master seed, so a spec is fully
/// reproducible.
#[derive(Clone, Debug)]
pub enum AdversaryKind {
    /// No jamming (`T = 0`).
    Silent,
    /// Jam `frac` of the band every slot until the budget is gone.
    Uniform { t: u64, frac: f64 },
    /// Jam the full band from `start` until the budget is gone.
    Burst { t: u64, start: u64 },
    /// Duty-cycled pulses.
    Pulse {
        t: u64,
        period: u64,
        duty: u64,
        frac: f64,
    },
    /// Sweeping window.
    Sweep { t: u64, width: u64, step: u64 },
    /// Exactly `k` uniformly random distinct channels per slot.
    RandomSubset { t: u64, k: u64 },
    /// Gilbert–Elliott bursty environmental noise.
    GilbertElliott {
        t: u64,
        p_gb: f64,
        p_bg: f64,
        frac: f64,
    },
    /// Schedule-targeted: jam `frac` of the band during every step of
    /// `MultiCastAdv` phases with `j == phase`, starting at `from_epoch`.
    /// `params` must match the protocol's so that the (public) schedule
    /// arithmetic agrees.
    TargetAdvPhase {
        t: u64,
        frac: f64,
        phase: u32,
        from_epoch: u32,
        params: AdvParams,
    },
    /// Schedule-targeted: jam `frac` of the band during `MultiCast`
    /// iterations `first..first+count` (spans computed from the public
    /// schedule for network size `n`).
    TargetMcIterations {
        t: u64,
        frac: f64,
        n: u64,
        params: McParams,
        count: u32,
    },
    /// **Adaptive** (Section 8 model): jam every channel that carried a
    /// transmission in the previous slot, up to `max_channels`.
    Reactive { t: u64, max_channels: u64 },
    /// **Adaptive**: the parameterized reactive family of the
    /// adaptive-adversary follow-up work (arXiv:2001.03936) — jam channels
    /// busy within the last `window` observed slots, up to `max_channels`
    /// per slot, triggering only once the window holds at least `threshold`
    /// distinct busy channels. `window = 1, threshold = 1` is
    /// [`Reactive`](Self::Reactive).
    ReactiveWindow {
        t: u64,
        window: u64,
        max_channels: u64,
        threshold: u64,
    },
    /// **Adaptive**: decay-scored hotspot tracker jamming the `k` hottest
    /// channels each slot.
    Hotspot { t: u64, k: u64, decay: f64 },
}

impl AdversaryKind {
    /// The budget `T` this adversary is allowed to spend.
    pub fn budget(&self) -> u64 {
        match *self {
            AdversaryKind::Silent => 0,
            AdversaryKind::Uniform { t, .. }
            | AdversaryKind::Burst { t, .. }
            | AdversaryKind::Pulse { t, .. }
            | AdversaryKind::Sweep { t, .. }
            | AdversaryKind::RandomSubset { t, .. }
            | AdversaryKind::GilbertElliott { t, .. }
            | AdversaryKind::TargetAdvPhase { t, .. }
            | AdversaryKind::TargetMcIterations { t, .. }
            | AdversaryKind::Reactive { t, .. }
            | AdversaryKind::ReactiveWindow { t, .. }
            | AdversaryKind::Hotspot { t, .. } => t,
        }
    }

    /// Is this one of the adaptive (execution-observing) strategies?
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            AdversaryKind::Reactive { .. }
                | AdversaryKind::ReactiveWindow { .. }
                | AdversaryKind::Hotspot { .. }
        )
    }

    /// Short name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::Silent => "silent",
            AdversaryKind::Uniform { .. } => "uniform",
            AdversaryKind::Burst { .. } => "burst",
            AdversaryKind::Pulse { .. } => "pulse",
            AdversaryKind::Sweep { .. } => "sweep",
            AdversaryKind::RandomSubset { .. } => "random-subset",
            AdversaryKind::GilbertElliott { .. } => "gilbert-elliott",
            AdversaryKind::TargetAdvPhase { .. } => "target-adv-phase",
            AdversaryKind::TargetMcIterations { .. } => "target-mc-iter",
            AdversaryKind::Reactive { .. } => "reactive (adaptive)",
            AdversaryKind::ReactiveWindow { .. } => "reactive-window (adaptive)",
            AdversaryKind::Hotspot { .. } => "hotspot (adaptive)",
        }
    }

    /// Full parameter rendering for `rcb describe` and report headers —
    /// unlike [`name`](Self::name), every knob that changes the strategy's
    /// behaviour appears here.
    pub fn detail(&self) -> String {
        match self {
            AdversaryKind::Silent => "silent".into(),
            AdversaryKind::Uniform { t, frac } => format!("uniform{{T={t}, frac={frac}}}"),
            AdversaryKind::Burst { t, start } => format!("burst{{T={t}, start={start}}}"),
            AdversaryKind::Pulse {
                t,
                period,
                duty,
                frac,
            } => format!("pulse{{T={t}, period={period}, duty={duty}, frac={frac}}}"),
            AdversaryKind::Sweep { t, width, step } => {
                format!("sweep{{T={t}, width={width}, step={step}}}")
            }
            AdversaryKind::RandomSubset { t, k } => format!("random-subset{{T={t}, k={k}}}"),
            AdversaryKind::GilbertElliott {
                t,
                p_gb,
                p_bg,
                frac,
            } => format!("gilbert-elliott{{T={t}, p_gb={p_gb}, p_bg={p_bg}, frac={frac}}}"),
            AdversaryKind::TargetAdvPhase {
                t,
                frac,
                phase,
                from_epoch,
                ..
            } => format!(
                "target-adv-phase{{T={t}, frac={frac}, phase={phase}, from_epoch={from_epoch}}}"
            ),
            AdversaryKind::TargetMcIterations {
                t, frac, n, count, ..
            } => format!("target-mc-iter{{T={t}, frac={frac}, n={n}, count={count}}}"),
            AdversaryKind::Reactive { t, max_channels } => {
                format!("reactive{{T={t}, cap={max_channels}}}")
            }
            AdversaryKind::ReactiveWindow {
                t,
                window,
                max_channels,
                threshold,
            } => format!(
                "reactive-window{{T={t}, w={window}, cap={max_channels}, threshold={threshold}}}"
            ),
            AdversaryKind::Hotspot { t, k, decay } => {
                format!("hotspot{{T={t}, k={k}, decay={decay}}}")
            }
        }
    }
}

/// One declarative nemesis event, the harness-level mirror of
/// [`rcb_sim::WorldEvent`]. The extra [`SwapEve`](Self::SwapEve) payload
/// names the replacement adversary declaratively; the runner seeds and
/// queues it (streams `1_000_010 + i` in swap order).
#[derive(Clone, Debug)]
pub enum ScheduleEventKind {
    /// Replace the adversary seat with this strategy (fresh budget).
    SwapEve(AdversaryKind),
    /// Split the network into isolated groups (unlisted nodes form a
    /// residual group).
    Partition { groups: Vec<Vec<u32>> },
    /// Remove any standing partition.
    Heal,
    /// Fail-stop the listed nodes (state preserved).
    CrashNodes { nodes: Vec<u32> },
    /// Re-admit the listed crashed nodes.
    RecoverNodes { nodes: Vec<u32> },
    /// Set the iid per-(round, edge) delivery-loss probability.
    SetLinkLoss { p: f64 },
}

impl ScheduleEventKind {
    /// Short name for report rows — matches
    /// [`rcb_sim::WorldEvent::kind`] for the mirrored variants.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleEventKind::SwapEve(_) => "swap-eve",
            ScheduleEventKind::Partition { .. } => "partition",
            ScheduleEventKind::Heal => "heal",
            ScheduleEventKind::CrashNodes { .. } => "crash",
            ScheduleEventKind::RecoverNodes { .. } => "recover",
            ScheduleEventKind::SetLinkLoss { .. } => "set-link-loss",
        }
    }
}

/// A declarative world schedule: time-indexed nemesis events in
/// nondecreasing slot order. The harness-level mirror of
/// [`rcb_sim::WorldSchedule`], kept as plain data so campaign specs stay
/// `Clone + Send` and serializable.
#[derive(Clone, Debug, Default)]
pub struct ScheduleSpec {
    /// `(slot, event)` pairs, nondecreasing in slot.
    pub events: Vec<(u64, ScheduleEventKind)>,
}

impl ScheduleSpec {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event; panics if `slot` precedes the last event's slot.
    pub fn at(mut self, slot: u64, event: ScheduleEventKind) -> Self {
        if let Some(&(last, _)) = self.events.last() {
            assert!(
                slot >= last,
                "schedule events must be nondecreasing: {slot} after {last}"
            );
        }
        self.events.push((slot, event));
        self
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Slot of the first event.
    pub fn first_slot(&self) -> Option<u64> {
        self.events.first().map(|&(s, _)| s)
    }

    /// Slot of the last event.
    pub fn last_slot(&self) -> Option<u64> {
        self.events.last().map(|&(s, _)| s)
    }

    /// Compact rendering for `rcb describe` / `rcb list` schedule columns:
    /// `"3 events @ 1000..5000"` (or `"1 event @ 1000"`).
    pub fn summary(&self) -> String {
        match (self.first_slot(), self.last_slot()) {
            (Some(first), Some(_)) if self.len() == 1 => format!("1 event @ {first}"),
            (Some(first), Some(last)) => format!("{} events @ {first}..{last}", self.len()),
            _ => "none".into(),
        }
    }

    /// Full rendering for `rcb describe`: every event with its slot.
    pub fn detail(&self) -> String {
        let items: Vec<String> = self
            .events
            .iter()
            .map(|(slot, e)| format!("{}@{slot}", e.name()))
            .collect();
        items.join(", ")
    }
}

/// One fully-specified trial.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    pub protocol: ProtocolKind,
    pub adversary: AdversaryKind,
    /// Connectivity topology (default: the single-hop complete graph).
    pub topology: TopologyKind,
    /// Nemesis schedule (default: empty — byte-identical to no schedule).
    pub schedule: ScheduleSpec,
    /// Master seed; node streams, engine sampling, adversary randomness,
    /// and topology randomness all derive from it.
    pub seed: u64,
    /// Engine slot cap.
    pub max_slots: u64,
}

impl TrialSpec {
    pub fn new(protocol: ProtocolKind, adversary: AdversaryKind, seed: u64) -> Self {
        Self {
            protocol,
            adversary,
            topology: TopologyKind::Complete,
            schedule: ScheduleSpec::new(),
            seed,
            max_slots: 2_000_000_000,
        }
    }

    pub fn with_max_slots(mut self, cap: u64) -> Self {
        self.max_slots = cap;
        self
    }

    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    pub fn with_schedule(mut self, schedule: ScheduleSpec) -> Self {
        self.schedule = schedule;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_n() {
        let p = ProtocolKind::MultiCast {
            n: 64,
            params: McParams::default(),
        };
        assert_eq!(p.name(), "MultiCast");
        assert_eq!(p.n(), 64);
        assert!(!p.never_halts());
        assert!(ProtocolKind::Naive {
            n: 16,
            act_prob: 1.0
        }
        .never_halts());

        let capped = ProtocolKind::Adv {
            n: 32,
            params: AdvParams {
                channel_cap: Some(8),
                ..AdvParams::default()
            },
        };
        assert_eq!(capped.name(), "MultiCastAdv(C)");
    }

    #[test]
    fn budgets() {
        assert_eq!(AdversaryKind::Silent.budget(), 0);
        assert_eq!(AdversaryKind::Uniform { t: 99, frac: 0.5 }.budget(), 99);
        assert_eq!(AdversaryKind::Burst { t: 7, start: 0 }.name(), "burst");
    }

    #[test]
    fn topology_kinds_build_deterministically() {
        assert!(TopologyKind::Complete.is_complete());
        assert!(!TopologyKind::Line.is_complete());
        assert_eq!(TopologyKind::Grid { cols: 4 }.name(), "grid");

        let kind = TopologyKind::RandomGeometric { radius: 0.5 };
        assert_eq!(kind.build(7), kind.build(7), "same master seed, same graph");
        assert_ne!(kind.build(7), kind.build(8), "per-trial graphs differ");

        let churned = TopologyKind::Dynamic {
            base: Box::new(TopologyKind::RandomGeometric { radius: 0.5 }),
            p_down: 0.3,
        };
        let rcb_sim::Topology::Dynamic { base, p_down, seed } = churned.build(7) else {
            panic!("dynamic kind must build a dynamic topology");
        };
        assert_eq!(p_down, 0.3);
        // The churn stream and the base generator's stream are distinct.
        let rcb_sim::Topology::RandomGeometric {
            seed: base_seed, ..
        } = *base
        else {
            panic!("base must survive the build");
        };
        assert_ne!(seed, base_seed);
    }

    #[test]
    fn multihop_protocol_kind() {
        let p = ProtocolKind::MultiHop {
            n: 32,
            channels: 16,
            p: 0.25,
        };
        assert_eq!(p.name(), "MultiHopCast");
        assert_eq!(p.n(), 32);
        assert!(p.never_halts(), "no termination detection yet");
    }

    #[test]
    fn multimessage_protocol_kind() {
        let p = ProtocolKind::MultiMessage {
            n: 32,
            k: 8,
            channels: 16,
            p: 0.25,
        };
        assert_eq!(p.name(), "MultiMessageCast");
        assert_eq!(p.n(), 32);
        assert!(p.never_halts(), "no termination detection");
        assert_eq!(
            p.detail(),
            "MultiMessageCast{n=32, k=8, channels=16, p=0.25}"
        );
    }

    #[test]
    fn trial_spec_defaults_to_single_hop() {
        let spec = TrialSpec::new(ProtocolKind::Decay { n: 16 }, AdversaryKind::Silent, 1);
        assert!(spec.topology.is_complete());
        assert!(spec.schedule.is_empty());
        let spec = spec.with_topology(TopologyKind::Line);
        assert_eq!(spec.topology.name(), "line");
    }

    #[test]
    fn schedule_spec_summaries() {
        let empty = ScheduleSpec::new();
        assert_eq!(empty.summary(), "none");
        assert_eq!(empty.first_slot(), None);

        let one = ScheduleSpec::new().at(1000, ScheduleEventKind::Heal);
        assert_eq!(one.summary(), "1 event @ 1000");
        assert_eq!(one.detail(), "heal@1000");

        let many = ScheduleSpec::new()
            .at(100, ScheduleEventKind::CrashNodes { nodes: vec![1, 2] })
            .at(500, ScheduleEventKind::RecoverNodes { nodes: vec![1, 2] })
            .at(
                900,
                ScheduleEventKind::SwapEve(AdversaryKind::Uniform { t: 10, frac: 0.5 }),
            );
        assert_eq!(many.summary(), "3 events @ 100..900");
        assert_eq!(many.detail(), "crash@100, recover@500, swap-eve@900");
        assert_eq!(many.last_slot(), Some(900));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn schedule_spec_rejects_out_of_order_events() {
        let _ = ScheduleSpec::new()
            .at(500, ScheduleEventKind::Heal)
            .at(100, ScheduleEventKind::Heal);
    }
}
