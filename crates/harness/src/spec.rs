//! Declarative descriptions of protocols, adversaries, and trials.

use rcb_core::{AdvParams, CoreParams, McParams};

/// Which protocol to run, with its parameters. Plain data: `Clone + Send`,
/// so sweeps can be built declaratively and dispatched across threads.
#[derive(Clone, Debug)]
pub enum ProtocolKind {
    /// `MultiCastCore` (knows `n` and `T`).
    Core { n: u64, t: u64, params: CoreParams },
    /// `MultiCast` (knows `n`).
    MultiCast { n: u64, params: McParams },
    /// `MultiCast(C)` on `c` channels.
    MultiCastC { n: u64, c: u64, params: McParams },
    /// `MultiCastAdv` (knows nothing). A `channel_cap` inside `params` makes
    /// it `MultiCastAdv(C)`.
    Adv { n: u64, params: AdvParams },
    /// Naive multi-channel epidemic (baseline; never halts).
    Naive { n: u64, act_prob: f64 },
    /// Naive epidemic with an explicit channel count (for the channel-count
    /// ablation E14).
    NaiveConfig {
        n: u64,
        channels: u64,
        act_prob: f64,
    },
    /// Single-channel resource-competitive baseline (SPAA'14 bounds).
    SingleChannel { n: u64, params: McParams },
    /// Classical `Decay` (baseline; never halts).
    Decay { n: u64 },
}

impl ProtocolKind {
    /// Network size of the trial.
    pub fn n(&self) -> u64 {
        match *self {
            ProtocolKind::Core { n, .. }
            | ProtocolKind::MultiCast { n, .. }
            | ProtocolKind::MultiCastC { n, .. }
            | ProtocolKind::Adv { n, .. }
            | ProtocolKind::Naive { n, .. }
            | ProtocolKind::NaiveConfig { n, .. }
            | ProtocolKind::SingleChannel { n, .. }
            | ProtocolKind::Decay { n } => n,
        }
    }

    /// Short name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Core { .. } => "MultiCastCore",
            ProtocolKind::MultiCast { .. } => "MultiCast",
            ProtocolKind::MultiCastC { .. } => "MultiCast(C)",
            ProtocolKind::Adv { n: _, params } => {
                if params.channel_cap.is_some() {
                    "MultiCastAdv(C)"
                } else {
                    "MultiCastAdv"
                }
            }
            ProtocolKind::Naive { .. } | ProtocolKind::NaiveConfig { .. } => "NaiveEpidemic",
            ProtocolKind::SingleChannel { .. } => "SingleChannelRcb",
            ProtocolKind::Decay { .. } => "Decay",
        }
    }

    /// Protocols without termination detection are run until all nodes are
    /// informed rather than until all halt.
    pub fn never_halts(&self) -> bool {
        matches!(
            self,
            ProtocolKind::Naive { .. }
                | ProtocolKind::NaiveConfig { .. }
                | ProtocolKind::Decay { .. }
        )
    }
}

/// Which adversary to run against, with its budget. The `seed` for strategy
/// randomness is derived from the trial's master seed, so a spec is fully
/// reproducible.
#[derive(Clone, Debug)]
pub enum AdversaryKind {
    /// No jamming (`T = 0`).
    Silent,
    /// Jam `frac` of the band every slot until the budget is gone.
    Uniform { t: u64, frac: f64 },
    /// Jam the full band from `start` until the budget is gone.
    Burst { t: u64, start: u64 },
    /// Duty-cycled pulses.
    Pulse {
        t: u64,
        period: u64,
        duty: u64,
        frac: f64,
    },
    /// Sweeping window.
    Sweep { t: u64, width: u64, step: u64 },
    /// Exactly `k` uniformly random distinct channels per slot.
    RandomSubset { t: u64, k: u64 },
    /// Gilbert–Elliott bursty environmental noise.
    GilbertElliott {
        t: u64,
        p_gb: f64,
        p_bg: f64,
        frac: f64,
    },
    /// Schedule-targeted: jam `frac` of the band during every step of
    /// `MultiCastAdv` phases with `j == phase`, starting at `from_epoch`.
    /// `params` must match the protocol's so that the (public) schedule
    /// arithmetic agrees.
    TargetAdvPhase {
        t: u64,
        frac: f64,
        phase: u32,
        from_epoch: u32,
        params: AdvParams,
    },
    /// Schedule-targeted: jam `frac` of the band during `MultiCast`
    /// iterations `first..first+count` (spans computed from the public
    /// schedule for network size `n`).
    TargetMcIterations {
        t: u64,
        frac: f64,
        n: u64,
        params: McParams,
        count: u32,
    },
    /// **Adaptive** (Section 8 model): jam every channel that carried a
    /// transmission in the previous slot, up to `max_channels`.
    Reactive { t: u64, max_channels: u64 },
    /// **Adaptive**: decay-scored hotspot tracker jamming the `k` hottest
    /// channels each slot.
    Hotspot { t: u64, k: u64, decay: f64 },
}

impl AdversaryKind {
    /// The budget `T` this adversary is allowed to spend.
    pub fn budget(&self) -> u64 {
        match *self {
            AdversaryKind::Silent => 0,
            AdversaryKind::Uniform { t, .. }
            | AdversaryKind::Burst { t, .. }
            | AdversaryKind::Pulse { t, .. }
            | AdversaryKind::Sweep { t, .. }
            | AdversaryKind::RandomSubset { t, .. }
            | AdversaryKind::GilbertElliott { t, .. }
            | AdversaryKind::TargetAdvPhase { t, .. }
            | AdversaryKind::TargetMcIterations { t, .. }
            | AdversaryKind::Reactive { t, .. }
            | AdversaryKind::Hotspot { t, .. } => t,
        }
    }

    /// Is this one of the adaptive (execution-observing) strategies?
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            AdversaryKind::Reactive { .. } | AdversaryKind::Hotspot { .. }
        )
    }

    /// Short name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::Silent => "silent",
            AdversaryKind::Uniform { .. } => "uniform",
            AdversaryKind::Burst { .. } => "burst",
            AdversaryKind::Pulse { .. } => "pulse",
            AdversaryKind::Sweep { .. } => "sweep",
            AdversaryKind::RandomSubset { .. } => "random-subset",
            AdversaryKind::GilbertElliott { .. } => "gilbert-elliott",
            AdversaryKind::TargetAdvPhase { .. } => "target-adv-phase",
            AdversaryKind::TargetMcIterations { .. } => "target-mc-iter",
            AdversaryKind::Reactive { .. } => "reactive (adaptive)",
            AdversaryKind::Hotspot { .. } => "hotspot (adaptive)",
        }
    }
}

/// One fully-specified trial.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    pub protocol: ProtocolKind,
    pub adversary: AdversaryKind,
    /// Master seed; node streams, engine sampling, and adversary randomness
    /// all derive from it.
    pub seed: u64,
    /// Engine slot cap.
    pub max_slots: u64,
}

impl TrialSpec {
    pub fn new(protocol: ProtocolKind, adversary: AdversaryKind, seed: u64) -> Self {
        Self {
            protocol,
            adversary,
            seed,
            max_slots: 2_000_000_000,
        }
    }

    pub fn with_max_slots(mut self, cap: u64) -> Self {
        self.max_slots = cap;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_n() {
        let p = ProtocolKind::MultiCast {
            n: 64,
            params: McParams::default(),
        };
        assert_eq!(p.name(), "MultiCast");
        assert_eq!(p.n(), 64);
        assert!(!p.never_halts());
        assert!(ProtocolKind::Naive {
            n: 16,
            act_prob: 1.0
        }
        .never_halts());

        let capped = ProtocolKind::Adv {
            n: 32,
            params: AdvParams {
                channel_cap: Some(8),
                ..AdvParams::default()
            },
        };
        assert_eq!(capped.name(), "MultiCastAdv(C)");
    }

    #[test]
    fn budgets() {
        assert_eq!(AdversaryKind::Silent.budget(), 0);
        assert_eq!(AdversaryKind::Uniform { t: 99, frac: 0.5 }.budget(), 99);
        assert_eq!(AdversaryKind::Burst { t: 7, start: 0 }.name(), "burst");
    }
}
