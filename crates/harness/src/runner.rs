//! Trial execution: build protocol + adversary from a spec, run the engine,
//! and fan trials out across CPU cores.

use crate::spec::{AdversaryKind, ProtocolKind, ScheduleEventKind, ScheduleSpec, TrialSpec};
use rcb_adversary::{
    FullBandBurst, GilbertElliott, HotspotJammer, JamSpan, PeriodicPulse, RandomSubset,
    ReactiveJammer, Silent, SpanJammer, Sweep, UniformFraction,
};
use rcb_core::baseline::{Decay, NaiveEpidemic, SingleChannelRcb};
use rcb_core::{
    AdvScheduleIter, MultiCast, MultiCastAdv, MultiCastC, MultiCastCore, MultiHopCast,
    MultiMessageCast,
};
use rcb_sim::{
    derive_seed, AdaptiveAdversary, Adversary, BatchLane, BatchSimulation, EngineConfig,
    EngineTelemetry, Eve, Observer, RunOutcome, ScheduleMarker, Simulation, WorldEvent,
    WorldSchedule, MAX_BATCH_LANES,
};

/// The distilled result of one trial — everything the experiment reports
/// need, small enough to collect by the thousands.
#[derive(Clone, Debug)]
pub struct TrialResult {
    pub protocol: &'static str,
    pub adversary: &'static str,
    pub n: u64,
    pub budget: u64,
    pub seed: u64,
    /// Physical slots executed.
    pub slots: u64,
    /// All nodes halted (for halting protocols) / all informed (for
    /// baselines without termination) before the slot cap.
    pub completed: bool,
    pub all_informed: bool,
    /// Slot by which the last node was informed (if all were).
    pub all_informed_at: Option<u64>,
    /// Slot by which the last node halted (if all did).
    pub last_halt: Option<u64>,
    pub max_cost: u64,
    pub mean_cost: f64,
    pub source_cost: u64,
    pub eve_spent: u64,
    /// Nodes that halted while uninformed (must be 0).
    pub safety_violations: usize,
    /// `(epoch, phase)` at which each node became a helper
    /// (`MultiCastAdv` only; empty otherwise).
    pub helper_phases: Vec<(u32, u32)>,
    /// Nodes still crashed when the run ended (0 for unscheduled trials).
    pub crashed: u32,
    /// Reachable nodes not crashed at the end — the denominator of the
    /// survivor-relative completion verdict.
    pub survivors: u32,
    /// Survivors that knew the message when the run ended.
    pub survivors_informed: u32,
    /// Applied schedule events, in application order (empty for
    /// unscheduled trials).
    pub timeline: Vec<ScheduleMarker>,
}

impl TrialResult {
    fn from_outcome(spec: &TrialSpec, out: &RunOutcome) -> Self {
        // Survivor-relative completion: identical to the classical verdict
        // for unscheduled trials (no crashes ⇒ survivors == reachable).
        let completed = if spec.protocol.never_halts() {
            out.survivors_all_informed
        } else {
            out.survivors_all_halted
        };
        let helper_phases = out
            .nodes
            .iter()
            .filter_map(|n| {
                let i = n.extra.get("helper_epoch")?;
                let j = n.extra.get("helper_phase")?;
                Some((i as u32, j as u32))
            })
            .collect();
        TrialResult {
            protocol: spec.protocol.name(),
            adversary: spec.adversary.name(),
            n: spec.protocol.n(),
            budget: spec.adversary.budget(),
            seed: spec.seed,
            slots: out.slots,
            completed,
            all_informed: out.all_informed,
            all_informed_at: out.all_informed_at,
            last_halt: out.last_halt(),
            max_cost: out.max_cost(),
            mean_cost: out.mean_cost(),
            source_cost: out.nodes[0].cost(),
            eve_spent: out.eve_spent,
            safety_violations: out.safety_violations(),
            helper_phases,
            crashed: out.crashed,
            survivors: out.survivors,
            survivors_informed: out.survivors_informed,
            timeline: out.timeline.clone(),
        }
    }

    /// Completion time in slots: last halt for halting protocols, last
    /// informed for baselines; falls back to executed slots if incomplete.
    pub fn completion_time(&self) -> u64 {
        self.last_halt
            .or(self.all_informed_at)
            .map(|s| s + 1)
            .unwrap_or(self.slots)
    }
}

/// A built adversary: either oblivious (the paper's model) or adaptive
/// (the Section 8 extension); [`BuiltAdversary::as_eve`] mounts it into the
/// engine's unified [`Eve`] seat.
enum BuiltAdversary {
    Oblivious(Box<dyn Adversary + Send>),
    Adaptive(Box<dyn AdaptiveAdversary + Send>),
}

impl BuiltAdversary {
    fn as_eve(&mut self) -> Eve<'_> {
        match self {
            BuiltAdversary::Oblivious(a) => Eve::Oblivious(a.as_mut()),
            BuiltAdversary::Adaptive(a) => Eve::Adaptive(a.as_mut()),
        }
    }
}

/// Stream id for the primary adversary's private randomness.
const ADVERSARY_STREAM: u64 = 1_000_003;
/// Base stream id for swap-in adversaries: the `i`-th `SwapEve` replacement
/// draws from stream `SWAP_ADVERSARY_STREAM_BASE + i`.
const SWAP_ADVERSARY_STREAM_BASE: u64 = 1_000_010;

/// Build the adversary described by `kind`. The strategy's private stream is
/// derived from the trial's master seed (stream id `1_000_003`).
fn build_adversary(kind: &AdversaryKind, master_seed: u64) -> BuiltAdversary {
    build_adversary_stream(kind, master_seed, ADVERSARY_STREAM)
}

/// [`build_adversary`] with an explicit stream id, so swap-in adversaries
/// get randomness independent of the primary seat's.
fn build_adversary_stream(kind: &AdversaryKind, master_seed: u64, stream: u64) -> BuiltAdversary {
    use BuiltAdversary::{Adaptive, Oblivious};
    let seed = derive_seed(master_seed, stream);
    match kind.clone() {
        AdversaryKind::Silent => Oblivious(Box::new(Silent)),
        AdversaryKind::Uniform { t, frac } => {
            Oblivious(Box::new(UniformFraction::new(t, frac, seed)))
        }
        AdversaryKind::Burst { t, start } => Oblivious(Box::new(FullBandBurst::new(t, start))),
        AdversaryKind::Pulse {
            t,
            period,
            duty,
            frac,
        } => Oblivious(Box::new(PeriodicPulse::new(t, period, duty, frac, seed))),
        AdversaryKind::Sweep { t, width, step } => Oblivious(Box::new(Sweep::new(t, width, step))),
        AdversaryKind::RandomSubset { t, k } => Oblivious(Box::new(RandomSubset::new(t, k, seed))),
        AdversaryKind::GilbertElliott {
            t,
            p_gb,
            p_bg,
            frac,
        } => Oblivious(Box::new(GilbertElliott::new(t, p_gb, p_bg, frac, seed))),
        AdversaryKind::TargetAdvPhase {
            t,
            frac,
            phase,
            from_epoch,
            params,
        } => {
            let spans = AdvScheduleIter::new(params.validated())
                .filter(move |seg| seg.phase == phase && seg.epoch >= from_epoch)
                .map(move |seg| JamSpan {
                    start: seg.start,
                    end: seg.start + seg.len,
                    frac,
                });
            Oblivious(Box::new(SpanJammer::new(t, spans, seed)))
        }
        AdversaryKind::TargetMcIterations {
            t,
            frac,
            n,
            params,
            count,
        } => {
            let proto = MultiCast::with_params(n, params);
            let spans: Vec<JamSpan> = proto
                .iteration_spans(count)
                .into_iter()
                .map(|(start, end)| JamSpan { start, end, frac })
                .collect();
            Oblivious(Box::new(SpanJammer::from_spans(t, spans, seed)))
        }
        AdversaryKind::Reactive { t, max_channels } => {
            Adaptive(Box::new(ReactiveJammer::new(t, max_channels)))
        }
        AdversaryKind::ReactiveWindow {
            t,
            window,
            max_channels,
            threshold,
        } => Adaptive(Box::new(ReactiveJammer::with_params(
            t,
            window,
            max_channels,
            threshold,
        ))),
        AdversaryKind::Hotspot { t, k, decay } => {
            Adaptive(Box::new(HotspotJammer::new(t, k, decay, seed)))
        }
    }
}

struct Noop;
impl Observer for Noop {}

/// Realize the declarative [`ScheduleSpec`] as an engine-level
/// [`WorldSchedule`] plus the built swap-in adversaries (queued in event
/// order, streams `1_000_010 + i`). Returns `None` for an empty spec so the
/// unscheduled engine path is dispatched unchanged.
fn build_schedule(
    spec: &ScheduleSpec,
    master_seed: u64,
) -> (Option<WorldSchedule>, Vec<BuiltAdversary>) {
    if spec.is_empty() {
        return (None, Vec::new());
    }
    let mut world = WorldSchedule::new();
    let mut swaps = Vec::new();
    for (slot, event) in &spec.events {
        let ev = match event {
            ScheduleEventKind::SwapEve(kind) => {
                let stream = SWAP_ADVERSARY_STREAM_BASE + swaps.len() as u64;
                swaps.push(build_adversary_stream(kind, master_seed, stream));
                WorldEvent::SwapEve
            }
            ScheduleEventKind::Partition { groups } => WorldEvent::Partition {
                groups: groups.clone(),
            },
            ScheduleEventKind::Heal => WorldEvent::Heal,
            ScheduleEventKind::CrashNodes { nodes } => WorldEvent::CrashNodes {
                nodes: nodes.clone(),
            },
            ScheduleEventKind::RecoverNodes { nodes } => WorldEvent::RecoverNodes {
                nodes: nodes.clone(),
            },
            ScheduleEventKind::SetLinkLoss { p } => WorldEvent::SetLinkLoss { p: *p },
        };
        world = world.at(*slot, ev);
    }
    (Some(world), swaps)
}

/// Per-trial knobs beyond the declarative [`TrialSpec`] itself. The single
/// options struct behind every trial entry point: `rcb bench` overrides
/// `engine` to time the slot-by-slot reference, experiments mount an
/// `observer` to capture growth curves.
#[derive(Default)]
pub struct TrialOptions<'a> {
    /// Base engine configuration. The spec's slot cap and the protocol's
    /// stop rule still override the matching fields.
    pub engine: EngineConfig,
    /// Stream engine events into this observer.
    pub observer: Option<&'a mut dyn Observer>,
}

impl<'a> TrialOptions<'a> {
    /// Options with a caller-supplied base [`EngineConfig`] (used by
    /// `rcb bench` to compare the fast-forward engine against the
    /// slot-by-slot reference on identical workloads).
    pub fn with_engine(engine: EngineConfig) -> Self {
        Self {
            engine,
            observer: None,
        }
    }

    /// Options streaming engine events into `observer` (used by the
    /// epidemic-growth experiment to capture informed-count curves).
    pub fn with_observer(observer: &'a mut dyn Observer) -> Self {
        Self {
            engine: EngineConfig::default(),
            observer: Some(observer),
        }
    }
}

/// Build the [`Simulation`] described by the spec and run it — the one
/// place the harness touches the engine. The single-hop `Complete` default
/// skips topology construction (the topology-aware path is byte-identical
/// for it — see `tests/topology_equivalence.rs` — so this is an
/// optimization, not a behavioural switch).
fn simulate<P: rcb_sim::Protocol>(
    protocol: &mut P,
    spec: &TrialSpec,
    opts: &mut TrialOptions<'_>,
) -> (RunOutcome, EngineTelemetry) {
    let cfg = EngineConfig {
        max_slots: spec.max_slots,
        stop_when_all_informed: spec.protocol.never_halts(),
        ..opts.engine
    };
    let mut adversary = build_adversary(&spec.adversary, spec.seed);
    let topology = (!spec.topology.is_complete()).then(|| spec.topology.build(spec.seed));
    let (world, mut swap_advs) = build_schedule(&spec.schedule, spec.seed);
    let mut noop = Noop;
    let mut sim = Simulation::new(protocol)
        .eve(adversary.as_eve())
        .topology(topology.as_ref())
        .config(cfg);
    if let Some(ws) = world.as_ref() {
        sim = sim.schedule(ws);
        for adv in swap_advs.iter_mut() {
            sim = sim.swap_eve(adv.as_eve());
        }
    }
    sim.observer(match opts.observer.as_deref_mut() {
        Some(obs) => obs,
        None => &mut noop,
    })
    .run_with_telemetry(spec.seed)
}

/// Whether `spec` fits the trial-batched execution lane
/// ([`rcb_sim::BatchSimulation`]): single-hop (the `Complete` topology
/// default), unscheduled, single-message. Specs outside this scope run
/// per-trial through the scalar engine instead.
pub fn batch_supported(spec: &TrialSpec) -> bool {
    spec.topology.is_complete()
        && spec.schedule.is_empty()
        && !matches!(spec.protocol, ProtocolKind::MultiMessage { .. })
}

/// Build the [`BatchSimulation`] described by the spec and run one batch of
/// lanes — the batched counterpart of [`simulate`]. The spec's own seed is
/// ignored; each lane runs under its entry of `seeds`.
fn simulate_batch<P: rcb_sim::Protocol>(
    protocol: &mut P,
    spec: &TrialSpec,
    seeds: &[u64],
    engine: EngineConfig,
) -> Vec<(RunOutcome, EngineTelemetry)> {
    let cfg = EngineConfig {
        max_slots: spec.max_slots,
        stop_when_all_informed: spec.protocol.never_halts(),
        ..engine
    };
    let mut out = Vec::with_capacity(seeds.len());
    for chunk in seeds.chunks(MAX_BATCH_LANES) {
        let mut advs: Vec<BuiltAdversary> = chunk
            .iter()
            .map(|&seed| build_adversary(&spec.adversary, seed))
            .collect();
        let lanes: Vec<BatchLane<'_>> = advs
            .iter_mut()
            .zip(chunk)
            .map(|(adv, &seed)| BatchLane {
                seed,
                eve: adv.as_eve(),
            })
            .collect();
        out.extend(BatchSimulation::new(protocol).config(cfg).run(lanes));
    }
    out
}

/// Run one trial per seed through the trial-batched lane (up to 64 lanes in
/// lockstep per batch; longer seed lists are chunked). Results come back in
/// seed order. A single seed delegates to the scalar engine and is
/// byte-identical to [`run_trial_telemetry`] on the same spec
/// (`tests/batch_equivalence.rs` pins this).
///
/// # Panics
/// If `spec` is outside the batch lane's scope (see [`batch_supported`]).
pub fn run_trial_batch(
    spec: &TrialSpec,
    seeds: &[u64],
    engine: EngineConfig,
) -> Vec<(TrialResult, EngineTelemetry)> {
    assert!(
        batch_supported(spec),
        "spec outside the batch lane's scope (topology/schedule/multi-message); \
         gate on batch_supported() and fall back to run_trial_telemetry"
    );
    let runs = match spec.protocol.clone() {
        ProtocolKind::Core { n, t, params } => {
            let mut p = MultiCastCore::with_params(n, t, params);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::MultiCast { n, params } => {
            let mut p = MultiCast::with_params(n, params);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::MultiCastC { n, c, params } => {
            let mut p = MultiCastC::with_params(n, c, params);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::Adv { n, params } => {
            let mut p = MultiCastAdv::with_params(n, params);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::Naive { n, act_prob } => {
            let mut p = NaiveEpidemic::with_act_prob(n, act_prob);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::NaiveConfig {
            n,
            channels,
            act_prob,
        } => {
            let mut p = NaiveEpidemic::with_config(n, channels, act_prob);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::SingleChannel { n, params } => {
            let mut p = SingleChannelRcb::with_params(n, params);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::Decay { n } => {
            let mut p = Decay::new(n);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::MultiHop { n, channels, p } => {
            let mut p = MultiHopCast::with_config(n, channels, p);
            simulate_batch(&mut p, spec, seeds, engine)
        }
        ProtocolKind::MultiMessage { .. } => {
            unreachable!("batch_supported excludes multi-message specs")
        }
    };
    runs.into_iter()
        .zip(seeds)
        .map(|((out, tel), &seed)| {
            let mut lane_spec = spec.clone();
            lane_spec.seed = seed;
            (TrialResult::from_outcome(&lane_spec, &out), tel)
        })
        .collect()
}

/// Run a single trial with default options.
pub fn run_trial(spec: &TrialSpec) -> TrialResult {
    run_trial_opts(spec, TrialOptions::default())
}

/// Run a single trial under explicit [`TrialOptions`].
pub fn run_trial_opts(spec: &TrialSpec, opts: TrialOptions<'_>) -> TrialResult {
    run_trial_telemetry(spec, opts).0
}

/// Run a single trial under explicit [`TrialOptions`] and also return the
/// engine's [`EngineTelemetry`] for the run. Collecting telemetry never
/// perturbs the trial itself — `run_trial_opts` is exactly the first
/// element of this pair.
pub fn run_trial_telemetry(
    spec: &TrialSpec,
    mut opts: TrialOptions<'_>,
) -> (TrialResult, EngineTelemetry) {
    let opts = &mut opts;
    let (out, tel) = match spec.protocol.clone() {
        ProtocolKind::Core { n, t, params } => {
            let mut p = MultiCastCore::with_params(n, t, params);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::MultiCast { n, params } => {
            let mut p = MultiCast::with_params(n, params);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::MultiCastC { n, c, params } => {
            let mut p = MultiCastC::with_params(n, c, params);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::Adv { n, params } => {
            let mut p = MultiCastAdv::with_params(n, params);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::Naive { n, act_prob } => {
            let mut p = NaiveEpidemic::with_act_prob(n, act_prob);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::NaiveConfig {
            n,
            channels,
            act_prob,
        } => {
            let mut p = NaiveEpidemic::with_config(n, channels, act_prob);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::SingleChannel { n, params } => {
            let mut p = SingleChannelRcb::with_params(n, params);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::Decay { n } => {
            let mut p = Decay::new(n);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::MultiHop { n, channels, p } => {
            let mut p = MultiHopCast::with_config(n, channels, p);
            simulate(&mut p, spec, opts)
        }
        ProtocolKind::MultiMessage { n, k, channels, p } => {
            let mut p = MultiMessageCast::with_config(n, k, channels, p);
            simulate(&mut p, spec, opts)
        }
    };
    (TrialResult::from_outcome(spec, &out), tel)
}

/// Master seed for replicate `replicate` of campaign cell `cell`: two-level
/// positional derivation — a per-cell stream seed first, then the
/// replicate's draw within that stream.
///
/// The two levels matter for the resumable campaign service: a cell's seed
/// stream depends only on `(campaign_seed, cell)`, **not** on how many
/// trials the campaign runs per cell. Raising `--trials` therefore extends
/// every cell's stream in place, so a checkpointed cell can run just the
/// missing replicates and a content-addressed store entry stays a strict
/// prefix of any larger run over the same cell.
pub fn cell_trial_seed(campaign_seed: u64, cell: u64, replicate: u64) -> u64 {
    derive_seed(derive_seed(campaign_seed, cell), replicate)
}

/// Resolve a requested worker count: 0 means "use the `RCB_THREADS`
/// environment variable if set, else one per available core". Lets CLI
/// tools (e.g. `repro --threads`) control parallelism without plumbing a
/// parameter through every experiment function.
pub fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if let Some(n) = std::env::var("RCB_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Run many trials in parallel across `threads` workers (0 = `RCB_THREADS`
/// if set, else one per available core). Results come back in spec order.
///
/// ```
/// use rcb_harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};
///
/// // A tiny sweep: MultiCast at two budgets, one seed each.
/// let specs: Vec<TrialSpec> = [10_000u64, 40_000]
///     .iter()
///     .map(|&t| TrialSpec::new(
///         ProtocolKind::MultiCast { n: 16, params: Default::default() },
///         AdversaryKind::Uniform { t, frac: 0.5 },
///         7,
///     ))
///     .collect();
/// let results = run_trials(&specs, 0);
/// assert!(results.iter().all(|r| r.completed && r.safety_violations == 0));
/// ```
pub fn run_trials(specs: &[TrialSpec], threads: usize) -> Vec<TrialResult> {
    if specs.is_empty() {
        return Vec::new();
    }
    let threads = resolve_threads(threads).min(specs.len());
    if threads <= 1 {
        return specs.iter().map(run_trial).collect();
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<TrialResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= specs.len() {
                    break;
                }
                let result = run_trial(&specs[idx]);
                *results[idx].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::McParams;

    fn quick_spec(seed: u64) -> TrialSpec {
        TrialSpec::new(
            ProtocolKind::Naive {
                n: 32,
                act_prob: 1.0,
            },
            AdversaryKind::Silent,
            seed,
        )
        .with_max_slots(100_000)
    }

    #[test]
    fn single_trial_runs() {
        let r = run_trial(&quick_spec(1));
        assert!(r.completed);
        assert!(r.all_informed);
        assert_eq!(r.safety_violations, 0);
        assert_eq!(r.protocol, "NaiveEpidemic");
        assert_eq!(r.adversary, "silent");
    }

    #[test]
    fn trials_are_reproducible() {
        let a = run_trial(&quick_spec(7));
        let b = run_trial(&quick_spec(7));
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.max_cost, b.max_cost);
        let c = run_trial(&quick_spec(8));
        assert!(a.slots != c.slots || a.max_cost != c.max_cost);
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let specs: Vec<TrialSpec> = (0..12).map(quick_spec).collect();
        let serial = run_trials(&specs, 1);
        let parallel = run_trials(&specs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.seed, p.seed, "order preserved");
            assert_eq!(s.slots, p.slots, "identical results per seed");
            assert_eq!(s.max_cost, p.max_cost);
        }
    }

    #[test]
    fn multicast_trial_with_uniform_adversary() {
        let spec = TrialSpec::new(
            ProtocolKind::MultiCast {
                n: 32,
                params: McParams::default(),
            },
            AdversaryKind::Uniform {
                t: 10_000,
                frac: 0.5,
            },
            3,
        );
        let r = run_trial(&spec);
        assert!(r.completed, "{r:?}");
        assert_eq!(r.safety_violations, 0);
        assert!(r.eve_spent <= 10_000);
        assert!(r.completion_time() > 0);
    }

    #[test]
    fn targeted_mc_adversary_builds_spans() {
        let spec = TrialSpec::new(
            ProtocolKind::MultiCast {
                n: 32,
                params: McParams::default(),
            },
            AdversaryKind::TargetMcIterations {
                t: 50_000,
                frac: 0.9,
                n: 32,
                params: McParams::default(),
                count: 3,
            },
            4,
        );
        let r = run_trial(&spec);
        assert!(r.completed);
        assert_eq!(r.safety_violations, 0);
        assert!(r.eve_spent > 0, "the targeted jammer must actually jam");
    }

    #[test]
    fn empty_spec_list() {
        assert!(run_trials(&[], 4).is_empty());
    }

    #[test]
    fn multihop_trial_over_a_line() {
        use crate::spec::TopologyKind;
        let spec = TrialSpec::new(
            ProtocolKind::MultiHop {
                n: 16,
                channels: 4,
                p: 0.25,
            },
            AdversaryKind::Silent,
            9,
        )
        .with_topology(TopologyKind::Line)
        .with_max_slots(5_000_000);
        let r = run_trial(&spec);
        assert!(r.completed, "{r:?}");
        assert!(r.all_informed);
        assert_eq!(r.protocol, "MultiHopCast");
        assert_eq!(r.safety_violations, 0);
    }

    #[test]
    fn multimessage_trial_tracks_every_payload() {
        let spec = TrialSpec::new(
            ProtocolKind::MultiMessage {
                n: 16,
                k: 4,
                channels: 8,
                p: 0.25,
            },
            AdversaryKind::Silent,
            13,
        )
        .with_max_slots(5_000_000);
        let r = run_trial(&spec);
        assert!(r.completed, "{r:?}");
        assert!(r.all_informed);
        assert_eq!(r.protocol, "MultiMessageCast");
        assert_eq!(r.safety_violations, 0);
    }

    #[test]
    fn scheduled_crash_trial_reports_survivor_relative_completion() {
        let spec = TrialSpec::new(
            ProtocolKind::Naive {
                n: 32,
                act_prob: 1.0,
            },
            AdversaryKind::Silent,
            21,
        )
        .with_max_slots(100_000)
        .with_schedule(ScheduleSpec::new().at(
            0,
            ScheduleEventKind::CrashNodes {
                nodes: vec![28, 29, 30, 31],
            },
        ));
        let r = run_trial(&spec);
        assert!(
            r.completed,
            "survivors completing counts as completed: {r:?}"
        );
        assert!(!r.all_informed, "crashed nodes can never learn");
        assert_eq!(r.crashed, 4);
        assert_eq!(r.survivors, 28);
        assert_eq!(r.survivors_informed, 28);
        assert_eq!(r.timeline.len(), 1);
        assert_eq!(r.timeline[0].kind, "crash");
        assert_eq!(r.safety_violations, 0);
    }

    #[test]
    fn scheduled_swap_eve_seats_an_independent_adversary() {
        let base = TrialSpec::new(
            ProtocolKind::Naive {
                n: 32,
                act_prob: 1.0,
            },
            AdversaryKind::Burst {
                t: 100_000,
                start: 0,
            },
            23,
        )
        .with_max_slots(500_000);
        let swapped = base.clone().with_schedule(
            ScheduleSpec::new().at(64, ScheduleEventKind::SwapEve(AdversaryKind::Silent)),
        );
        let r = run_trial(&swapped);
        assert!(r.completed, "{r:?}");
        assert_eq!(r.timeline.len(), 1);
        assert_eq!(r.timeline[0].kind, "swap-eve");
        // The burst jammer was cut off after 64 slots; the unswapped run
        // spends far more of her budget.
        let full = run_trial(&base);
        assert!(
            r.eve_spent < full.eve_spent,
            "{} vs {}",
            r.eve_spent,
            full.eve_spent
        );
    }

    #[test]
    fn unscheduled_and_empty_schedule_trials_agree() {
        let plain = run_trial(&quick_spec(5));
        let empty = run_trial(&quick_spec(5).with_schedule(ScheduleSpec::new()));
        assert_eq!(plain.slots, empty.slots);
        assert_eq!(plain.max_cost, empty.max_cost);
        assert_eq!(plain.survivors, empty.survivors);
        assert!(empty.timeline.is_empty());
    }

    #[test]
    fn complete_topology_matches_topology_free_dispatch() {
        use crate::spec::TopologyKind;
        let base = TrialSpec::new(
            ProtocolKind::MultiCast {
                n: 16,
                params: McParams::default(),
            },
            AdversaryKind::Uniform {
                t: 10_000,
                frac: 0.5,
            },
            11,
        );
        let a = run_trial(&base);
        let b = run_trial(&base.clone().with_topology(TopologyKind::Complete));
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.max_cost, b.max_cost);
        assert_eq!(a.eve_spent, b.eve_spent);
    }
}
