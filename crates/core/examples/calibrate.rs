//! Calibration tool for the protocol constants in `rcb_core::params`.
//!
//! Prints (a) the epidemic completion time at `p = 1/64`, which anchors the
//! iteration-length constants of `MultiCastCore`/`MultiCast`, and (b)
//! `MultiCastAdv` life-cycle diagnostics (helper phases, halt epochs,
//! runtime) across `n` and `α`. Run after changing any default in
//! `params.rs`:
//!
//! ```text
//! cargo run --release -p rcb-core --example calibrate
//! ```

use rcb_core::baseline::NaiveEpidemic;
use rcb_core::{AdvParams, MultiCastAdv};
use rcb_sim::{EngineConfig, Simulation};

fn epidemic_times() {
    println!("== epidemic completion at p = 1/64 (anchors CoreParams.a / McParams.a) ==");
    for n in [16u64, 32, 64, 128, 256, 512, 1024] {
        let mut worst = 0u64;
        let mut sum = 0u64;
        let trials = 20;
        for seed in 0..trials {
            let mut proto = NaiveEpidemic::with_act_prob(n, 1.0 / 64.0);
            let cfg = EngineConfig {
                stop_when_all_informed: true,
                ..EngineConfig::capped(100_000_000)
            };
            let out = Simulation::new(&mut proto).config(cfg).run(seed);
            assert!(out.all_informed);
            worst = worst.max(out.slots);
            sum += out.slots;
        }
        let lgn = (n as f64).log2();
        println!(
            "n={n:5}  mean={:8}  worst={worst:8}  worst/lg n = {:7.0}",
            sum / trials,
            worst as f64 / lgn
        );
    }
}

fn adv_lifecycle() {
    println!("\n== MultiCastAdv life-cycle (T = 0) ==");
    for (n, alpha) in [(16u64, 0.2f64), (32, 0.2), (64, 0.2), (16, 0.1), (16, 0.24)] {
        let params = AdvParams {
            alpha,
            ..AdvParams::default()
        };
        let mut proto = MultiCastAdv::with_params(n, params);
        let start = std::time::Instant::now();
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(2_000_000_000))
            .run(1);
        let elapsed = start.elapsed();
        let helper_epochs: Vec<f64> = out
            .nodes
            .iter()
            .filter_map(|x| x.extra.get("helper_epoch"))
            .collect();
        let helper_phases: Vec<f64> = out
            .nodes
            .iter()
            .filter_map(|x| x.extra.get("helper_phase"))
            .collect();
        let he = helper_epochs.iter().cloned().fold(0.0, f64::max);
        let hp_min = helper_phases.iter().cloned().fold(f64::MAX, f64::min);
        let hp_max = helper_phases.iter().cloned().fold(0.0, f64::max);
        println!(
            "n={n:4} alpha={alpha}  slots={:>12}  informed={} halted={} \
             helper_phase=[{hp_min},{hp_max}] (want {}) last_helper_epoch={he} \
             max_cost={}  wall={elapsed:.2?}",
            out.slots,
            out.all_informed,
            out.all_halted,
            (n as f64).log2() as u32 - 1,
            out.max_cost(),
        );
    }
}

fn main() {
    epidemic_times();
    adv_lifecycle();
}
