//! `MultiCast(C)` (Section 7, Figure 5): run `MultiCast` when only
//! `C ≤ n/2` physical channels exist.
//!
//! `MultiCast` is *channel-uniform* (every active node draws from the same
//! channel set each slot), so it can be simulated in a `C`-channel network
//! by stretching each virtual slot into a **round** of `n/(2C)` physical
//! slots: a node that would use virtual channel `k ∈ [0, n/2)` instead uses
//! physical channel `k mod C` during sub-slot `⌊k/C⌋` of the round. One
//! round carries exactly one virtual slot's traffic, so correctness is
//! untouched and the running time scales by `n/(2C)`.
//!
//! Guarantees (Corollary 7.1, w.h.p.): all nodes receive `m` and halt within
//! `O(T/C + (n/C)·lg²n)` slots, each spending `O(√(T/n)·√(lg T)·lg n + lg²n)`
//! energy — i.e. limited spectrum costs time, never energy. At `C = 1` this
//! *is* a single-channel resource-competitive broadcast matching the bounds
//! of Gilbert et al. (SPAA'14); see [`crate::baseline::SingleChannelRcb`].
//!
//! The engine's round machinery (`SlotProfile::round_len`) implements the
//! sub-slot mapping; node behaviour is byte-for-byte the [`McNode`] of
//! `MultiCast`, with thresholds computed in rounds.

use crate::multicast::McNode;
use crate::params::McParams;
use rcb_sim::{Protocol, SlotProfile};

/// The `MultiCast(C)` protocol (schedule side).
///
/// ```
/// use rcb_core::MultiCastC;
/// use rcb_sim::Simulation;
///
/// // Only 4 physical channels: each virtual MultiCast slot is simulated by
/// // a round of n/(2·4) = 4 physical slots.
/// let mut limited = MultiCastC::new(32, 4);
/// assert_eq!(limited.round_len(), 4);
/// let outcome = Simulation::new(&mut limited).run(7);
/// assert!(outcome.all_informed && outcome.all_halted);
/// ```
#[derive(Clone, Debug)]
pub struct MultiCastC {
    n: u64,
    c: u64,
    params: McParams,
    next_iteration: u32,
}

impl MultiCastC {
    /// Create for `n` nodes (a power of two ≥ 4) on `c` channels. Per the
    /// paper, `c` is rounded down so that it divides `n/2`; since `n` is a
    /// power of two this means rounding `c` down to a power of two (and
    /// capping it at `n/2`).
    pub fn new(n: u64, c: u64) -> Self {
        Self::with_params(n, c, McParams::default())
    }

    pub fn with_params(n: u64, c: u64, params: McParams) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4, got {n}"
        );
        assert!(c >= 1, "need at least one channel");
        let c_eff = c.min(n / 2).next_power_of_two();
        let c_eff = if c_eff > c.min(n / 2) {
            c_eff / 2
        } else {
            c_eff
        };
        Self {
            n,
            c: c_eff,
            params,
            next_iteration: params.first_iteration,
        }
    }

    /// The effective (rounded-down) channel count actually used.
    pub fn channels(&self) -> u64 {
        self.c
    }

    /// Physical slots per round: `n/(2C)`.
    pub fn round_len(&self) -> u64 {
        self.n / 2 / self.c
    }
}

impl Protocol for MultiCastC {
    type Node = McNode;

    fn num_nodes(&self) -> u32 {
        self.n as u32
    }

    fn segment(&mut self, _start_slot: u64) -> SlotProfile {
        let i = self.next_iteration;
        self.next_iteration += 1;
        let p = self.params.p(i);
        let rounds = self.params.rounds(i, self.n);
        let round_len = self.round_len();
        SlotProfile {
            p1: p,
            p2: p,
            channels: self.c,
            virt_channels: self.n / 2,
            round_len: round_len as u32,
            seg_len: rounds * round_len,
            seg_major: i,
            seg_minor: 0,
            step: 0,
        }
    }

    fn make_node(&self, _id: u32, is_source: bool) -> McNode {
        McNode::new(is_source, self.params.halt_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_sim::{EngineConfig, ProtocolNode, Simulation};

    fn quick() -> McParams {
        McParams::default()
    }

    #[test]
    fn channel_count_rounds_down_to_divisor() {
        assert_eq!(MultiCastC::new(64, 32).channels(), 32);
        assert_eq!(MultiCastC::new(64, 33).channels(), 32, "capped at n/2");
        assert_eq!(
            MultiCastC::new(64, 5).channels(),
            4,
            "rounded to power of two"
        );
        assert_eq!(MultiCastC::new(64, 1).channels(), 1);
        assert_eq!(
            MultiCastC::new(64, 8).round_len(),
            4,
            "32 virtual / 8 physical"
        );
    }

    #[test]
    fn profile_stretches_iterations_by_round_len() {
        let mut full = crate::multicast::MultiCast::with_params(64, quick());
        let mut limited = MultiCastC::with_params(64, 8, quick());
        let pf = full.segment(0);
        let pl = limited.segment(0);
        assert_eq!(pl.seg_len, pf.seg_len * 4, "n/(2C) = 4 slots per round");
        assert_eq!(pl.rounds(), pf.seg_len, "same number of virtual slots");
        assert_eq!(pl.virt_channels, 32);
        assert_eq!(pl.channels, 8);
        assert_eq!(pl.p1, pf.p1);
    }

    #[test]
    fn completes_with_limited_channels() {
        for c in [1u64, 4, 16] {
            let mut proto = MultiCastC::with_params(32, c, quick());
            let out = Simulation::new(&mut proto)
                .config(EngineConfig::capped(100_000_000))
                .run(c);
            assert!(out.all_informed, "C = {c}");
            assert!(out.all_halted, "C = {c}");
            assert_eq!(out.safety_violations(), 0, "C = {c}");
        }
    }

    #[test]
    fn time_scales_inversely_with_channels_but_cost_does_not() {
        let run_c = |c: u64, seed: u64| {
            let mut proto = MultiCastC::with_params(32, c, quick());
            let out = Simulation::new(&mut proto)
                .config(EngineConfig::capped(100_000_000))
                .run(seed);
            assert!(out.all_halted);
            (out.slots, out.mean_cost())
        };
        let (t16, c16) = run_c(16, 1);
        let (t1, c1) = run_c(1, 1);
        assert_eq!(t1, 16 * t16, "T = 0: runtime is exactly rounds x n/(2C)");
        let ratio = c1 / c16;
        assert!(
            (0.5..2.0).contains(&ratio),
            "energy should not scale with C (ratio {ratio})"
        );
    }

    #[test]
    fn at_c_equals_half_n_behaves_like_multicast() {
        // Round length 1: the schedule degenerates to plain MultiCast.
        let mut limited = MultiCastC::with_params(32, 16, quick());
        let p = limited.segment(0);
        assert_eq!(p.round_len, 1);
        assert_eq!(p.virt_channels, p.channels);
    }

    #[test]
    fn node_threshold_uses_rounds_not_slots() {
        // With round_len = 4, an iteration of 100 rounds spans 400 slots;
        // the halting threshold must use 100 (rounds), not 400.
        let profile = SlotProfile {
            p1: 1.0 / 64.0,
            p2: 1.0 / 64.0,
            channels: 4,
            virt_channels: 16,
            round_len: 4,
            seg_len: 400,
            seg_major: 6,
            seg_minor: 0,
            step: 0,
        };
        let mut node = McNode::new(true, 0.5);
        // threshold = 0.5 · 100 · (1/64) ≈ 0.78 → zero noise halts...
        assert_eq!(node.on_boundary(&profile), rcb_sim::BoundaryDecision::Halt);
        // ...and one noisy slot does not.
        let mut node2 = McNode::new(true, 0.5);
        node2.on_feedback(&profile, rcb_sim::Feedback::Noise);
        assert_eq!(
            node2.on_boundary(&profile),
            rcb_sim::BoundaryDecision::Continue
        );
    }
}
