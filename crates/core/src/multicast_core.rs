//! `MultiCastCore` (Section 4, Figure 1): the simplest of the paper's
//! algorithms — fixed-length iterations, knows both `n` and `T`.
//!
//! Every iteration has `R = Θ(lg T̂)` slots, `T̂ = max(T, n)`. In each slot a
//! node hops to a uniform channel in `[0, n/2)` and listens with probability
//! `1/64`; informed nodes additionally broadcast with probability `1/64`. At
//! an iteration boundary a node halts iff it heard fewer than `R/128` noisy
//! slots. Needing `T` up front is the algorithm's drawback (it sizes the
//! per-iteration error probability as `1/T̂^{Θ(1)}`) and the reason
//! `MultiCast` exists; its compensating virtue (end of Section 4) is that
//! once Eve stops jamming, every surviving node halts within **one**
//! `Θ(lg T̂)`-slot iteration — much faster than the `Θ̃(T)` other resource
//! competitive algorithms need. Experiment E3 measures exactly this.
//!
//! Guarantees (Theorem 4.4, w.h.p.): all nodes receive `m`, and each node's
//! running time and energy are both `O(T/n + max{lg T, lg n})`.

use crate::multicast::McNode;
use crate::params::{ceil_slots, lg_f64, CoreParams};
use rcb_sim::{Protocol, SlotProfile};

/// The `MultiCastCore` protocol (schedule side).
///
/// ```
/// use rcb_core::MultiCastCore;
/// use rcb_sim::Simulation;
///
/// // Knows both n and Eve's budget T up front.
/// let mut protocol = MultiCastCore::new(64, 10_000);
/// let outcome = Simulation::new(&mut protocol).run(7);
/// assert!(outcome.all_informed && outcome.all_halted);
/// // With no actual jamming, everything ends at the first iteration boundary.
/// assert_eq!(outcome.slots, protocol.iteration_len());
/// ```
#[derive(Clone, Debug)]
pub struct MultiCastCore {
    n: u64,
    params: CoreParams,
    /// Iteration length `R = ⌈a · lg T̂⌉`, fixed for the whole run.
    r: u64,
    next_iteration: u32,
}

impl MultiCastCore {
    /// Create for `n` nodes (power of two ≥ 4) against an adversary with
    /// budget at most `t`.
    pub fn new(n: u64, t: u64) -> Self {
        Self::with_params(n, t, CoreParams::default())
    }

    pub fn with_params(n: u64, t: u64, params: CoreParams) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4, got {n}"
        );
        let t_hat = t.max(n);
        let r = ceil_slots(params.a * lg_f64(t_hat));
        Self {
            n,
            params,
            r,
            next_iteration: 0,
        }
    }

    /// The fixed iteration length `R`.
    pub fn iteration_len(&self) -> u64 {
        self.r
    }
}

impl Protocol for MultiCastCore {
    type Node = McNode;

    fn num_nodes(&self) -> u32 {
        self.n as u32
    }

    fn segment(&mut self, _start_slot: u64) -> SlotProfile {
        let i = self.next_iteration;
        self.next_iteration += 1;
        SlotProfile {
            p1: self.params.p,
            p2: self.params.p,
            channels: self.n / 2,
            virt_channels: self.n / 2,
            round_len: 1,
            seg_len: self.r,
            seg_major: i,
            seg_minor: 0,
            step: 0,
        }
    }

    fn make_node(&self, _id: u32, is_source: bool) -> McNode {
        McNode::new(is_source, self.params.halt_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::{FullBandBurst, UniformFraction};
    use rcb_sim::{EngineConfig, Simulation};

    #[test]
    fn iteration_length_formula() {
        let p = CoreParams::default();
        // T̂ = max(T, n); lg(1 << 20) = 20.
        let proto = MultiCastCore::new(64, 1 << 20);
        assert_eq!(proto.iteration_len(), (p.a * 20.0).ceil() as u64);
        // With T < n the floor T̂ = n applies.
        let proto2 = MultiCastCore::new(64, 0);
        assert_eq!(proto2.iteration_len(), (p.a * 6.0).ceil() as u64);
    }

    #[test]
    fn completes_in_one_iteration_without_adversary() {
        let mut proto = MultiCastCore::new(64, 0);
        let r = proto.iteration_len();
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(50_000_000))
            .run(1);
        assert!(out.all_informed && out.all_halted);
        assert_eq!(out.slots, r, "T = 0 finishes at the first boundary");
        assert_eq!(out.safety_violations(), 0);
    }

    #[test]
    fn survives_moderate_uniform_jamming() {
        let n = 64u64;
        let t = 50_000;
        let mut proto = MultiCastCore::new(n, t);
        let mut eve = UniformFraction::new(t, 0.5, 99);
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(EngineConfig::capped(50_000_000))
            .run(2);
        assert!(
            out.all_informed,
            "jamming half the band cannot stop the epidemic"
        );
        assert!(out.all_halted);
        assert_eq!(out.safety_violations(), 0);
        // Resource competitiveness: Eve spent ~t, nodes spent far less.
        assert!(out.eve_spent > t / 2);
        assert!(
            (out.max_cost() as f64) < 0.2 * out.eve_spent as f64,
            "max node cost {} should be far below Eve's spend {}",
            out.max_cost(),
            out.eve_spent
        );
    }

    #[test]
    fn strong_jamming_delays_halting() {
        // Eve jams 95% of the band. Noisy fraction of listening slots while
        // she is active ≈ 0.95, far above the halting threshold 1/2, so
        // nodes must keep running until she has spent enough.
        let n = 64u64;
        let t = 6_000_000u64;
        let mut proto = MultiCastCore::new(n, t);
        let r = proto.iteration_len();
        let mut eve = UniformFraction::new(t, 0.95, 5);
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(EngineConfig::capped(50_000_000))
            .run(3);
        assert!(out.all_halted);
        assert_eq!(out.safety_violations(), 0);
        // She can sustain 95%-band jamming for t / (0.95·32) ≈ 197k slots,
        // enough to keep the noisy fraction above 1/2 through the whole
        // first iteration (R ≈ 10240·lg 6e6 ≈ 230k? — compare measured).
        assert!(
            out.slots > r,
            "jamming should push termination past the first iteration ({} <= {r})",
            out.slots
        );
    }

    #[test]
    fn fast_termination_after_burst_ends() {
        // Section 4 remark: once Eve stops, all remaining nodes terminate
        // within one iteration (the burst end is sharp, so measure the gap).
        let n = 64u64;
        let t = 20_000_000u64;
        let mut proto = MultiCastCore::new(n, t);
        let r = proto.iteration_len();
        let mut eve = FullBandBurst::front_loaded(t);
        let jam_slots = t / (n / 2); // full band affordable this long
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(EngineConfig::capped(50_000_000))
            .run(4);
        assert!(out.all_halted);
        assert!(out.all_informed);
        let end = out.last_halt().expect("all halted") + 1;
        assert!(
            end >= jam_slots,
            "full-band jamming blocks everything until Eve is bankrupt"
        );
        assert!(
            end <= (jam_slots / r + 2) * r,
            "halt at {end}, jam ended at {jam_slots}, R = {r}: must finish within ~2 iterations"
        );
    }

    #[test]
    fn safe_across_seeds() {
        for seed in 0..10 {
            let mut proto = MultiCastCore::new(32, 10_000);
            let mut eve = UniformFraction::new(10_000, 0.8, seed * 7 + 1);
            let out = Simulation::new(&mut proto)
                .adversary(&mut eve)
                .config(EngineConfig::capped(50_000_000))
                .run(seed);
            assert_eq!(out.safety_violations(), 0, "seed {seed}");
            assert!(out.all_informed, "seed {seed}");
        }
    }
}
