//! Closed-form theory helpers: the paper's bounds and the adversary
//! economics implied by the protocol schedules.
//!
//! Experiments need to *pick budgets* that make a sweep informative (each
//! step should let Eve block one more iteration/epoch) and to *compare*
//! measurements against predicted shapes. This module centralizes that
//! arithmetic, with the constants of this implementation (not the paper's
//! galactic analysis constants — see DESIGN.md §5).

use crate::params::{lg_f64, AdvParams, McParams};

/// Predicted `MultiCast` bounds of Theorem 5.4, up to constant factors:
/// time `T/n + lg²n`, per-node cost `√(T/n)·√lg T·lg n + lg²n`.
/// Useful for shape comparison (ratios across sweep points), not absolute
/// prediction.
pub fn multicast_time_shape(n: u64, t: u64) -> f64 {
    t as f64 / n as f64 + lg_f64(n) * lg_f64(n)
}

/// See [`multicast_time_shape`].
pub fn multicast_cost_shape(n: u64, t: u64) -> f64 {
    let lg_n = lg_f64(n);
    ((t as f64 / n as f64).sqrt()) * lg_f64(t.max(2)).sqrt() * lg_n + lg_n * lg_n
}

/// Predicted `MultiCastAdv` shapes of Theorem 6.10.
pub fn adv_time_shape(n: u64, t: u64, alpha: f64) -> f64 {
    let n_pow = (n as f64).powf(1.0 - 2.0 * alpha);
    let lg_t3 = lg_f64(t.max(2)).powi(3);
    let lg_n3 = lg_f64(n).powi(3);
    t as f64 / n_pow * lg_t3 + (n as f64).powf(2.0 * alpha) * lg_n3
}

/// See [`adv_time_shape`].
pub fn adv_cost_shape(n: u64, t: u64, alpha: f64) -> f64 {
    let n_pow = (n as f64).powf(1.0 - 2.0 * alpha);
    let lg_t3 = lg_f64(t.max(2)).powi(3);
    let lg_n3 = lg_f64(n).powi(3);
    (t as f64 / n_pow).sqrt() * lg_t3 + (n as f64).powf(2.0 * alpha) * lg_n3
}

/// Energy Eve must spend to keep `MultiCast` iteration `i` "noisy": to push
/// the expected noisy fraction of listening slots above the halting
/// threshold `ratio`, she must jam an (expected) `ratio` fraction of
/// channel-slots over the iteration. Cheapest plan: jam `frac` of the `n/2`
/// channels for `ratio/frac` of the `R_i` slots, costing
/// `ratio · (n/2) · R_i` regardless of `frac`.
pub fn mc_blocking_cost(params: &McParams, n: u64, i: u32) -> u64 {
    let r = params.rounds(i, n) as f64;
    (params.halt_ratio * (n as f64 / 2.0) * r).ceil() as u64
}

/// The smallest budget that lets Eve block `MultiCast` iterations
/// `first..=last` back to back (the budget placing termination at the end
/// of iteration `last + 1`).
pub fn mc_budget_to_block_through(params: &McParams, n: u64, last: u32) -> u64 {
    (params.first_iteration..=last)
        .map(|i| mc_blocking_cost(params, n, i))
        .sum()
}

/// Wall-clock slots from the start of execution through the end of
/// `MultiCast` iteration `i` (inclusive).
pub fn mc_slots_through(params: &McParams, n: u64, i: u32) -> u64 {
    (params.first_iteration..=i)
        .map(|k| params.rounds(k, n))
        .sum()
}

/// Energy Eve must spend to deny halting in one `MultiCastAdv` helper-phase
/// step: push the noisy fraction of step two of phase `(i, j)` above
/// `theta_n` — `theta_n · 2^j · R(i,j)` channel-slots.
pub fn adv_blocking_cost(params: &AdvParams, i: u32, j: u32) -> u64 {
    let r = params.r(i, j) as f64;
    (params.theta_n * (1u64 << j) as f64 * r).ceil() as u64
}

/// Per-node expected energy in one `(i, j)`-phase of `MultiCastAdv`
/// (both steps; step one has one action class, step two has two).
pub fn adv_phase_cost(params: &AdvParams, i: u32, j: u32) -> f64 {
    let r = params.r(i, j) as f64;
    let p = params.p(i, j);
    r * p + r * 2.0 * p
}

/// Per-node expected energy across all phases of epoch `i`.
pub fn adv_epoch_cost(params: &AdvParams, i: u32) -> f64 {
    (0..=params.max_phase(i))
        .map(|j| adv_phase_cost(params, i, j))
        .sum()
}

/// Wall-clock slots in epoch `i` of `MultiCastAdv`.
pub fn adv_epoch_slots(params: &AdvParams, i: u32) -> u64 {
    (0..=params.max_phase(i)).map(|j| 2 * params.r(i, j)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_monotone_in_t() {
        for t in [0u64, 1_000, 1_000_000] {
            let t2 = t * 4 + 1;
            assert!(multicast_time_shape(64, t2) > multicast_time_shape(64, t));
            assert!(multicast_cost_shape(64, t2) > multicast_cost_shape(64, t));
            assert!(adv_time_shape(64, t2, 0.2) > adv_time_shape(64, t, 0.2));
            assert!(adv_cost_shape(64, t2, 0.2) > adv_cost_shape(64, t, 0.2));
        }
    }

    #[test]
    fn cost_shape_grows_like_sqrt_t() {
        // Quadrupling T should roughly double the T-dominated cost shape
        // (times the √lg T drift).
        let a = multicast_cost_shape(16, 10_000_000);
        let b = multicast_cost_shape(16, 40_000_000);
        let ratio = b / a;
        assert!((1.9..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn blocking_cost_matches_hand_calculation() {
        let p = McParams::default();
        // R_6(n=16) = 512·6·16 = 49152; blocking = 0.5·8·49152 = 196608.
        assert_eq!(mc_blocking_cost(&p, 16, 6), 196_608);
        // Budgets used by experiments E4/E5 block through these iterations:
        let b6 = mc_budget_to_block_through(&p, 16, 6);
        let b7 = mc_budget_to_block_through(&p, 16, 7);
        assert_eq!(b6, 196_608);
        assert!(b7 > 5 * b6 / 2, "iteration 7 is ~4.7x longer");
        // The E4/E5 sweep values straddle these thresholds.
        assert!(400_000 > b6 && 400_000 < b7);
    }

    #[test]
    fn slots_through_matches_iteration_sum() {
        let p = McParams::default();
        let r6 = p.rounds(6, 16);
        let r7 = p.rounds(7, 16);
        assert_eq!(mc_slots_through(&p, 16, 7), r6 + r7);
    }

    #[test]
    fn adv_epoch_accounting() {
        let params = AdvParams {
            alpha: 0.24,
            ..AdvParams::default()
        }
        .validated();
        // Epoch slots are the sum of both steps of each phase.
        let manual: u64 = (0..=params.max_phase(5)).map(|j| 2 * params.r(5, j)).sum();
        assert_eq!(adv_epoch_slots(&params, 5), manual);
        // Node cost per epoch is far below the slot count (sparse actions).
        assert!(adv_epoch_cost(&params, 5) < adv_epoch_slots(&params, 5) as f64);
        // Eve's per-step denial price grows with the epoch.
        assert!(adv_blocking_cost(&params, 12, 3) > adv_blocking_cost(&params, 8, 3));
    }

    #[test]
    fn adv_blocking_formula() {
        let params = AdvParams {
            alpha: 0.24,
            theta_n: 0.025,
            ..AdvParams::default()
        }
        .validated();
        let r = params.r(10, 3);
        let expect = (0.025 * 8.0 * r as f64).ceil() as u64;
        assert_eq!(adv_blocking_cost(&params, 10, 3), expect);
    }
}
