//! `MultiMessageCast`: `k` concurrent payloads through one broadcast
//! schedule — the multi-message broadcast model of Ahmadi & Kuhn
//! (arXiv:1610.02931), single-source variant.
//!
//! The source starts holding all `k` messages; every other node must learn
//! all of them. Per slot the behaviour is the relay schedule of
//! [`MultiHopCast`](crate::MultiHopCast) with **payload multiplexing**:
//!
//! * with probability `p` a node draws the **listen** coin; nodes still
//!   missing at least one message listen on a uniformly random channel
//!   (complete nodes stay idle);
//! * with probability `p` a node draws the **broadcast** coin; nodes
//!   holding at least one message broadcast a *uniformly random message
//!   they know* ([`Payload::Msg`]) on a uniformly random channel.
//!
//! Because any partial holder relays whatever it knows, the protocol works
//! unchanged over multi-hop topologies, and distinct messages spread
//! concurrently through the same slots — the engine's per-message tracking
//! ([`rcb_sim::RunOutcome::messages`], via
//! [`ProtocolNode::informed_mask`]) records each message's own completion
//! slot. This is the first protocol written once against the unified
//! `Simulation` core rather than per engine entry point.
//!
//! Like `MultiHopCast` there is **no termination detection**: run with
//! `stop_when_all_informed`, under which the engine stops once every
//! reachable node holds all `k` messages.

use rcb_sim::{
    Action, BoundaryDecision, Coin, Feedback, Payload, Protocol, ProtocolNode, SlotProfile,
    Xoshiro256,
};

/// The multi-message broadcast protocol (schedule side).
#[derive(Clone, Debug)]
pub struct MultiMessageCast {
    n: u64,
    k: u32,
    channels: u64,
    p: f64,
}

impl MultiMessageCast {
    /// `n` nodes (a power of two ≥ 4) carrying `k` concurrent messages on
    /// `n/2` channels with the default action probability.
    pub fn new(n: u64, k: u32) -> Self {
        Self::with_config(n, k, n / 2, 0.25)
    }

    /// Fully configurable: `k ∈ 1..=64` messages, `channels ≥ 1` physical
    /// channels, per-slot action probability `p ∈ (0, 0.5]` per coin class.
    pub fn with_config(n: u64, k: u32, channels: u64, p: f64) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4, got {n}"
        );
        assert!((1..=64).contains(&k), "k must be in 1..=64, got {k}");
        assert!(channels >= 1, "need at least one channel");
        assert!(p > 0.0 && p <= 0.5, "p must be in (0, 0.5], got {p}");
        Self { n, k, channels, p }
    }

    /// Bitmask with one bit per message.
    fn full_mask(&self) -> u64 {
        if self.k == 64 {
            u64::MAX
        } else {
            (1u64 << self.k) - 1
        }
    }
}

impl Protocol for MultiMessageCast {
    type Node = MultiMessageNode;

    fn num_nodes(&self) -> u32 {
        self.n as u32
    }

    fn segment(&mut self, _start_slot: u64) -> SlotProfile {
        SlotProfile {
            p1: self.p,
            p2: self.p,
            channels: self.channels,
            virt_channels: self.channels,
            round_len: 1,
            // One giant segment: there are no boundary checks to run.
            seg_len: 1 << 50,
            seg_major: 0,
            seg_minor: 0,
            step: 0,
        }
    }

    fn make_node(&self, _id: u32, is_source: bool) -> MultiMessageNode {
        MultiMessageNode {
            mask: if is_source { self.full_mask() } else { 0 },
            full: self.full_mask(),
        }
    }

    fn num_messages(&self) -> u32 {
        self.k
    }
}

/// Node state: which messages this node holds.
#[derive(Clone, Debug)]
pub struct MultiMessageNode {
    mask: u64,
    full: u64,
}

impl MultiMessageNode {
    /// Pick a uniformly random known message (caller guarantees
    /// `mask != 0`).
    fn random_known(&self, rng: &mut Xoshiro256) -> u16 {
        let idx = rng.gen_range(self.mask.count_ones() as u64);
        let mut bits = self.mask;
        for _ in 0..idx {
            bits &= bits - 1;
        }
        bits.trailing_zeros() as u16
    }
}

impl ProtocolNode for MultiMessageNode {
    fn on_selected(&mut self, profile: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
        match coin {
            Coin::One if self.mask != self.full => Action::Listen {
                ch: rng.gen_range(profile.virt_channels),
            },
            Coin::Two if self.mask != 0 => {
                let ch = rng.gen_range(profile.virt_channels);
                Action::Broadcast {
                    ch,
                    payload: Payload::Msg(self.random_known(rng)),
                }
            }
            _ => Action::Idle,
        }
    }

    fn on_feedback(&mut self, _profile: &SlotProfile, fb: Feedback) {
        if let Feedback::Message(Payload::Msg(j)) = fb {
            if u32::from(j) < 64 {
                self.mask |= (1u64 << j) & self.full;
            }
        }
    }

    fn on_boundary(&mut self, _profile: &SlotProfile) -> BoundaryDecision {
        BoundaryDecision::Continue
    }

    fn is_informed(&self) -> bool {
        self.mask == self.full
    }

    fn informed_mask(&self) -> u64 {
        self.mask
    }

    fn status_label(&self) -> &'static str {
        if self.mask == self.full {
            "complete"
        } else if self.mask != 0 {
            "partial"
        } else {
            "empty"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::UniformFraction;
    use rcb_sim::{EngineConfig, Simulation, Topology};

    fn informed_cfg() -> EngineConfig {
        EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(10_000_000)
        }
    }

    #[test]
    fn all_messages_reach_everyone() {
        let mut proto = MultiMessageCast::new(16, 4);
        let out = Simulation::new(&mut proto).config(informed_cfg()).run(1);
        assert!(out.all_informed, "{out:?}");
        assert_eq!(out.safety_violations(), 0);
        assert_eq!(out.messages.len(), 4);
        for m in &out.messages {
            assert_eq!(m.informed_count, 16);
            assert!(m.all_informed_at.is_some());
        }
        // The run ends exactly when the slowest message completes.
        let slowest = out.messages.iter().filter_map(|m| m.all_informed_at).max();
        assert_eq!(slowest, out.all_informed_at);
    }

    #[test]
    fn messages_complete_at_distinct_times() {
        // With 8 messages racing through the same slots, at least two must
        // finish at different slots (they would all tie only with
        // astronomical luck).
        let mut proto = MultiMessageCast::new(16, 8);
        let out = Simulation::new(&mut proto).config(informed_cfg()).run(2);
        assert!(out.all_informed);
        let times: std::collections::BTreeSet<u64> = out
            .messages
            .iter()
            .map(|m| m.all_informed_at.unwrap())
            .collect();
        assert!(times.len() > 1, "all {} messages tied: {times:?}", 8);
    }

    #[test]
    fn more_messages_take_longer() {
        let time = |k: u32| {
            let mut slots = 0u64;
            for seed in 0..5 {
                let mut proto = MultiMessageCast::new(16, k);
                let out = Simulation::new(&mut proto)
                    .config(informed_cfg())
                    .run(100 + seed);
                assert!(out.all_informed);
                slots += out.slots;
            }
            slots
        };
        assert!(
            time(16) > time(1),
            "16 concurrent messages must take longer than one"
        );
    }

    #[test]
    fn survives_jamming() {
        let mut proto = MultiMessageCast::new(16, 4);
        let mut eve = UniformFraction::new(5_000, 0.5, 3);
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(informed_cfg())
            .run(4);
        assert!(out.all_informed, "{out:?}");
        assert!(out.eve_spent > 0);
    }

    #[test]
    fn relays_partial_knowledge_over_a_line() {
        // On a line, message bits must travel hop by hop through partial
        // holders; completion still means everyone holds everything.
        let mut proto = MultiMessageCast::with_config(8, 4, 4, 0.25);
        let out = Simulation::new(&mut proto)
            .topology(&Topology::Line)
            .config(informed_cfg())
            .run(5);
        assert!(out.all_informed, "{out:?}");
        assert_eq!(out.reachable, 8);
        for m in &out.messages {
            assert_eq!(m.informed_count, 8);
        }
    }

    #[test]
    fn never_halts() {
        let mut proto = MultiMessageCast::new(16, 2);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(500))
            .run(6);
        assert!(!out.all_halted);
        assert!(out.nodes.iter().all(|n| n.halted_at.is_none()));
        for m in &out.messages {
            assert_eq!(m.halted_knowing, 0);
        }
    }

    #[test]
    fn k_one_is_a_valid_degenerate_case() {
        let mut proto = MultiMessageCast::new(16, 1);
        let out = Simulation::new(&mut proto).config(informed_cfg()).run(7);
        assert!(out.all_informed);
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].all_informed_at, out.all_informed_at);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=64")]
    fn rejects_k_zero() {
        MultiMessageCast::new(16, 0);
    }

    #[test]
    fn random_known_is_uniform_over_held_bits() {
        let node = MultiMessageNode {
            mask: 0b1010_0010,
            full: 0xff,
        };
        let mut rng = Xoshiro256::seeded(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let j = node.random_known(&mut rng);
            assert!(node.mask & (1 << j) != 0, "picked an unheld message {j}");
            seen.insert(j);
        }
        assert_eq!(seen.len(), 3, "all three held messages get picked");
    }
}
