//! The classical `Decay` broadcast primitive as a non-robust control.

use rcb_sim::{
    Action, BoundaryDecision, Coin, Feedback, Payload, Protocol, ProtocolNode, SlotProfile,
    Xoshiro256,
};

/// `Decay` (Bar-Yehuda, Goldreich & Itai, 1992), specialised to a single-hop
/// single-channel network: time is divided into rounds of `lg n` slots; in
/// slot `k` of a round each informed node broadcasts with probability
/// `2^{−k}` while every uninformed node listens.
///
/// In the jamming-free single-hop setting this informs everyone almost
/// immediately (the very first slot has a lone broadcaster — the source).
/// Its role here is as the **energy-naive control** in experiments E6/E12:
/// it has no noise-based termination, so under jamming its uninformed
/// listeners burn one energy unit per slot — `Θ(T)` per node against a
/// budget-`T` adversary, the behaviour resource-competitive algorithms are
/// designed to avoid. Like `NaiveEpidemic` it never halts; run it with
/// [`EngineConfig::stop_when_all_informed`](rcb_sim::EngineConfig).
#[derive(Clone, Debug)]
pub struct Decay {
    n: u64,
    round: u32,
}

impl Decay {
    pub fn new(n: u64) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4, got {n}"
        );
        Self { n, round: 0 }
    }

    fn lg_n(&self) -> u32 {
        self.n.trailing_zeros()
    }
}

impl Protocol for Decay {
    type Node = DecayNode;

    fn num_nodes(&self) -> u32 {
        self.n as u32
    }

    fn segment(&mut self, _start_slot: u64) -> SlotProfile {
        // Each *slot* is its own segment so that the per-slot broadcast
        // probability 2^{−k} can vary; `seg_minor` carries `k`.
        let k = self.round % self.lg_n();
        self.round += 1;
        SlotProfile {
            // Everyone is selected every slot; the decaying broadcast
            // probability is applied inside the node (it depends on the
            // node's informed status, which the engine does not see).
            p1: 1.0,
            p2: 0.0,
            channels: 1,
            virt_channels: 1,
            round_len: 1,
            seg_len: 1,
            seg_major: self.round - 1,
            seg_minor: k,
            step: 0,
        }
    }

    fn make_node(&self, _id: u32, is_source: bool) -> DecayNode {
        DecayNode {
            informed: is_source,
        }
    }
}

/// Node state for `Decay`.
#[derive(Clone, Debug)]
pub struct DecayNode {
    informed: bool,
}

impl ProtocolNode for DecayNode {
    fn on_selected(&mut self, profile: &SlotProfile, _coin: Coin, rng: &mut Xoshiro256) -> Action {
        if self.informed {
            let p = 0.5f64.powi(profile.seg_minor as i32);
            if rng.gen_bool(p) {
                Action::Broadcast {
                    ch: 0,
                    payload: Payload::Data,
                }
            } else {
                Action::Idle
            }
        } else {
            Action::Listen { ch: 0 }
        }
    }

    fn on_feedback(&mut self, _profile: &SlotProfile, fb: Feedback) {
        if fb == Feedback::Message(Payload::Data) {
            self.informed = true;
        }
    }

    fn on_boundary(&mut self, _profile: &SlotProfile) -> BoundaryDecision {
        BoundaryDecision::Continue
    }

    fn is_informed(&self) -> bool {
        self.informed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::FullBandBurst;
    use rcb_sim::{EngineConfig, Simulation};

    fn informed_cfg(cap: u64) -> EngineConfig {
        EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(cap)
        }
    }

    #[test]
    fn informs_everyone_in_the_first_slot_without_jamming() {
        // Slot 0 has broadcast probability 2^0 = 1 and a single informed
        // node — a clean transmission to all listeners.
        let mut proto = Decay::new(16);
        let out = Simulation::new(&mut proto)
            .config(informed_cfg(10_000))
            .run(1);
        assert!(out.all_informed);
        assert_eq!(out.slots, 1);
    }

    #[test]
    fn jamming_makes_listeners_pay_linearly() {
        // The resource-competitiveness failure mode: Eve jams the single
        // channel for T slots; every uninformed node listens (and pays)
        // every one of those slots.
        let t = 5_000u64;
        let mut proto = Decay::new(16);
        let mut eve = FullBandBurst::front_loaded(t);
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(informed_cfg(100_000))
            .run(2);
        assert!(out.all_informed);
        assert!(out.slots >= t, "broadcast blocked until Eve is bankrupt");
        let max_uninformed_cost = out
            .nodes
            .iter()
            .filter(|n| n.id != 0)
            .map(|n| n.cost())
            .max()
            .unwrap();
        assert!(
            max_uninformed_cost >= t,
            "listeners pay Θ(T): cost {max_uninformed_cost} vs T = {t}"
        );
    }

    #[test]
    fn broadcast_probability_decays_within_round() {
        let mut proto = Decay::new(16);
        let profiles: Vec<SlotProfile> = (0..8).map(|s| proto.segment(s)).collect();
        let ks: Vec<u32> = profiles.iter().map(|p| p.seg_minor).collect();
        assert_eq!(ks, vec![0, 1, 2, 3, 0, 1, 2, 3], "k cycles over lg n = 4");
    }
}
