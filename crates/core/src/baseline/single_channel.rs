//! The single-channel resource-competitive comparator.

use crate::limited::MultiCastC;
use crate::multicast::McNode;
use crate::params::McParams;
use rcb_sim::{Protocol, SlotProfile};

/// Single-channel resource-competitive broadcast with the
/// `Õ(T + n)`-time / `Õ(√(T/n))`-energy profile of Gilbert, King, Pettie,
/// Porat, Saia & Young, *"(Near) Optimal Resource-competitive Broadcast with
/// Jamming"* (SPAA 2014) — the prior state of the art the paper improves on.
///
/// # Why this is `MultiCast(C = 1)`
///
/// The SPAA'14 system is not open source, and the paper uses only its
/// *bounds* as the comparison point. Corollary 7.1 of the paper proves that
/// `MultiCast(C)` at `C = 1` achieves exactly those bounds —
/// `O(T + n·lg²n)` time and `O(√(T/n)·√(lg T)·lg n + lg²n)` energy — *on a
/// single channel*, and the paper itself presents `MultiCast(1)` as matching
/// the best known single-channel algorithm. Using it as the baseline puts
/// both sides of the E6 comparison on the same simulator and the same
/// constant conventions, which is precisely what a fair "who wins and by how
/// much" measurement needs. (See DESIGN.md §2 for this substitution.)
#[derive(Clone, Debug)]
pub struct SingleChannelRcb {
    inner: MultiCastC,
}

impl SingleChannelRcb {
    pub fn new(n: u64) -> Self {
        Self::with_params(n, McParams::default())
    }

    pub fn with_params(n: u64, params: McParams) -> Self {
        Self {
            inner: MultiCastC::with_params(n, 1, params),
        }
    }
}

impl Protocol for SingleChannelRcb {
    type Node = McNode;

    fn num_nodes(&self) -> u32 {
        self.inner.num_nodes()
    }

    fn segment(&mut self, start_slot: u64) -> SlotProfile {
        self.inner.segment(start_slot)
    }

    fn make_node(&self, id: u32, is_source: bool) -> McNode {
        self.inner.make_node(id, is_source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_sim::{EngineConfig, Simulation};

    #[test]
    fn uses_exactly_one_channel() {
        let mut proto = SingleChannelRcb::new(32);
        let p = proto.segment(0);
        assert_eq!(p.channels, 1);
        assert_eq!(p.virt_channels, 16);
        assert_eq!(p.round_len, 16, "n/2 sub-slots per round on one channel");
    }

    #[test]
    fn completes_on_a_single_channel() {
        let mut proto = SingleChannelRcb::new(32);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(100_000_000))
            .run(1);
        assert!(out.all_informed && out.all_halted);
        assert_eq!(out.safety_violations(), 0);
    }

    #[test]
    fn slower_than_multichannel_by_about_n_over_2() {
        let params = McParams::default();
        let mut single = SingleChannelRcb::with_params(32, params);
        let mut multi = crate::multicast::MultiCast::with_params(32, params);
        let s = Simulation::new(&mut single)
            .config(EngineConfig::capped(100_000_000))
            .run(2);
        let m = Simulation::new(&mut multi)
            .config(EngineConfig::capped(100_000_000))
            .run(2);
        assert!(s.all_halted && m.all_halted);
        // At T = 0 both halt at their first boundary; the single-channel
        // boundary is n/2 = 16x later in physical slots.
        assert_eq!(s.slots, 16 * m.slots);
    }
}
