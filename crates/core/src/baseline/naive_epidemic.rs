//! The bare "multi-channel epidemic broadcast" scheme from Section 1 of the
//! paper.

use rcb_sim::{
    Action, BoundaryDecision, Coin, Feedback, Payload, Protocol, ProtocolNode, SlotProfile,
    Xoshiro256,
};

/// Naive epidemic broadcast: in every slot every node hops to a uniformly
/// random channel in `[0, n/2)`; informed nodes broadcast (with probability
/// `act_prob`, default 1) and uninformed nodes listen.
///
/// This is the scheme the paper's introduction motivates: "in each time
/// slot, let each node independently choose a random channel, then let
/// informed nodes broadcast and uninformed nodes listen". The number of
/// informed nodes grows geometrically, and even an adversary jamming a
/// constant fraction of channels only dents the growth rate (Claim 4.1.1 /
/// experiment E1).
///
/// It has **no termination detection** — run it with
/// [`EngineConfig::stop_when_all_informed`](rcb_sim::EngineConfig) — and
/// listeners pay one unit *every* slot, which is why it is only a baseline.
#[derive(Clone, Debug)]
pub struct NaiveEpidemic {
    n: u64,
    channels: u64,
    act_prob: f64,
}

impl NaiveEpidemic {
    pub fn new(n: u64) -> Self {
        Self::with_act_prob(n, 1.0)
    }

    /// Variant where nodes act with probability `act_prob` per slot
    /// (the "sparse" epidemic of Section 5, without the iteration scaffold).
    pub fn with_act_prob(n: u64, act_prob: f64) -> Self {
        Self::with_config(n, n / 2, act_prob)
    }

    /// Fully configurable variant, for the channel-count ablation (E14):
    /// Section 4 argues `n/2` channels is the sweet spot — "too few channels
    /// hurts parallelism, but too many channels may result in nodes not
    /// being able to meet each other sufficiently often".
    pub fn with_config(n: u64, channels: u64, act_prob: f64) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4, got {n}"
        );
        assert!(channels >= 1, "need at least one channel");
        assert!(act_prob > 0.0 && act_prob <= 1.0);
        Self {
            n,
            channels,
            act_prob,
        }
    }
}

impl Protocol for NaiveEpidemic {
    type Node = NaiveNode;

    fn num_nodes(&self) -> u32 {
        self.n as u32
    }

    fn segment(&mut self, _start_slot: u64) -> SlotProfile {
        SlotProfile {
            p1: self.act_prob,
            p2: 0.0,
            channels: self.channels,
            virt_channels: self.channels,
            round_len: 1,
            // One giant segment: there are no boundaries to act on.
            seg_len: 1 << 50,
            seg_major: 0,
            seg_minor: 0,
            step: 0,
        }
    }

    fn make_node(&self, _id: u32, is_source: bool) -> NaiveNode {
        NaiveNode {
            informed: is_source,
        }
    }
}

/// Node state: just "do I know m".
#[derive(Clone, Debug)]
pub struct NaiveNode {
    informed: bool,
}

impl ProtocolNode for NaiveNode {
    fn on_selected(&mut self, profile: &SlotProfile, _coin: Coin, rng: &mut Xoshiro256) -> Action {
        let ch = rng.gen_range(profile.virt_channels);
        if self.informed {
            Action::Broadcast {
                ch,
                payload: Payload::Data,
            }
        } else {
            Action::Listen { ch }
        }
    }

    fn on_feedback(&mut self, _profile: &SlotProfile, fb: Feedback) {
        if fb == Feedback::Message(Payload::Data) {
            self.informed = true;
        }
    }

    fn on_boundary(&mut self, _profile: &SlotProfile) -> BoundaryDecision {
        BoundaryDecision::Continue
    }

    fn is_informed(&self) -> bool {
        self.informed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::UniformFraction;
    use rcb_sim::{EngineConfig, Simulation};

    fn informed_cfg() -> EngineConfig {
        EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(1_000_000)
        }
    }

    #[test]
    fn informs_everyone_in_logarithmic_time() {
        let mut proto = NaiveEpidemic::new(64);
        let out = Simulation::new(&mut proto).config(informed_cfg()).run(1);
        assert!(out.all_informed);
        // Geometric growth: wildly less than n slots.
        assert!(out.slots < 200, "took {} slots", out.slots);
    }

    #[test]
    fn survives_ninety_percent_jamming() {
        // Claim 4.1.1's setting: Eve jams 90% of all n/2 channels every slot;
        // the epidemic still completes quickly (experiment E1).
        let mut proto = NaiveEpidemic::new(64);
        let mut eve = UniformFraction::new(u64::MAX, 0.9, 3);
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(informed_cfg())
            .run(2);
        assert!(out.all_informed, "jamming 90% must not stop the epidemic");
        assert!(out.slots < 2_000, "took {} slots", out.slots);
    }

    #[test]
    fn full_jamming_stops_it() {
        let mut proto = NaiveEpidemic::new(16);
        let mut eve = UniformFraction::new(u64::MAX, 1.0, 4);
        let cfg = EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(2_000)
        };
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(cfg)
            .run(3);
        assert!(!out.all_informed);
        assert_eq!(out.informed_count(), 1, "only the source knows m");
    }

    #[test]
    fn sparse_variant_is_slower_but_cheaper_per_slot() {
        let mut dense = NaiveEpidemic::new(32);
        let dense_out = Simulation::new(&mut dense).config(informed_cfg()).run(5);
        let mut sparse = NaiveEpidemic::with_act_prob(32, 0.25);
        let sparse_out = Simulation::new(&mut sparse).config(informed_cfg()).run(5);
        assert!(dense_out.all_informed && sparse_out.all_informed);
        assert!(sparse_out.slots > dense_out.slots);
        let dense_rate = dense_out.mean_cost() / dense_out.slots as f64;
        let sparse_rate = sparse_out.mean_cost() / sparse_out.slots as f64;
        assert!(sparse_rate < dense_rate);
    }

    #[test]
    fn channel_count_is_configurable() {
        // With only 2 channels the dense epidemic informs ~half the network
        // in slot 0 and then deadlocks: ~16 informed nodes broadcasting on 2
        // channels collide essentially forever. This is the §4 "too few
        // channels hurts parallelism" effect (the dense epidemic lacks the
        // probability-backoff that MultiCast(C) adds for scarce spectrum).
        let mut narrow = NaiveEpidemic::with_config(32, 2, 1.0);
        let cfg = EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(2_000)
        };
        let narrow_out = Simulation::new(&mut narrow).config(cfg).run(9);
        assert!(
            !narrow_out.all_informed,
            "2 always-busy channels should deadlock on collisions"
        );
        assert!(
            narrow_out.informed_count() > 1,
            "slot 0 still informs some listeners"
        );
        let mut wide = NaiveEpidemic::with_config(32, 16, 1.0);
        let wide_out = Simulation::new(&mut wide).config(informed_cfg()).run(9);
        assert!(wide_out.all_informed);
    }

    #[test]
    fn nodes_never_halt() {
        let mut proto = NaiveEpidemic::new(16);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(500))
            .run(6);
        assert!(!out.all_halted);
        assert!(out.nodes.iter().all(|n| n.halted_at.is_none()));
    }
}
