//! Comparison baselines for the experiments.
//!
//! * [`NaiveEpidemic`] — the bare multi-channel epidemic broadcast sketched
//!   in the paper's introduction: maximal parallel dissemination, no
//!   robustness machinery, no termination detection. Demonstrates both why
//!   epidemic spreading is fast (experiment E1) and why the paper's
//!   termination/competitiveness machinery is necessary.
//! * [`SingleChannelRcb`] — a single-channel resource-competitive broadcast
//!   with the `Õ(T + n)` time / `Õ(√(T/n))` energy bounds of Gilbert et al.
//!   (SPAA 2014), realized as `MultiCast(C = 1)`. The multi-channel speedup
//!   headline (experiment E6) is measured against this.
//! * [`Decay`] — the classical non-robust broadcast primitive of Bar-Yehuda
//!   et al., as an energy-naive control: its listeners pay `Θ(T)` under
//!   jamming, the cost the resource-competitive algorithms avoid.

mod decay;
mod naive_epidemic;
mod single_channel;

pub use decay::Decay;
pub use naive_epidemic::NaiveEpidemic;
pub use single_channel::SingleChannelRcb;
