//! `MultiCast` (Section 5, Figure 2): resource-competitive broadcast on
//! `n/2` channels, knowing `n` but **not** `T`.
//!
//! The algorithm runs iterations `i = 6, 7, 8, …` of geometrically growing
//! length `R_i = Θ(i·4^i·lg²n)` rounds with geometrically shrinking action
//! probability `p_i = 2^{−i}`. In every slot each node hops to a uniformly
//! random channel in `[0, n/2)`; with probability `p_i` it listens, and with
//! probability `p_i` it broadcasts the message if informed (uninformed nodes
//! stay idle on that coin). At the end of iteration `i` a node halts iff it
//! heard noise in fewer than `R_i·p_i/2` of its listening slots — little
//! noise means little jamming, which means the epidemic broadcast must have
//! succeeded (Lemma 5.1), and fewer active nodes only means *less* collision
//! noise, so Eve cannot cheaply keep survivors awake (Lemma 5.3).
//!
//! Guarantees (Theorem 5.4, w.h.p.): all nodes receive `m` and terminate
//! within `O(T/n + lg²n)` slots, each spending
//! `O(√(T/n)·√(lg T)·lg n + lg²n)` energy.

use crate::params::McParams;
use rcb_sim::{
    Action, BoundaryDecision, Coin, Feedback, NodeExtra, Payload, Protocol, ProtocolNode,
    SlotProfile, Xoshiro256,
};

/// The `MultiCast` protocol (schedule side).
#[derive(Clone, Debug)]
pub struct MultiCast {
    n: u64,
    params: McParams,
    next_iteration: u32,
}

impl MultiCast {
    /// Create for a network of `n` nodes (a power of two ≥ 4), using `n/2`
    /// channels.
    pub fn new(n: u64) -> Self {
        Self::with_params(n, McParams::default())
    }

    pub fn with_params(n: u64, params: McParams) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4, got {n}"
        );
        Self {
            n,
            params,
            next_iteration: params.first_iteration,
        }
    }

    /// The iteration length `R_i` in rounds (= slots for this protocol).
    pub fn iteration_rounds(&self, i: u32) -> u64 {
        self.params.rounds(i, self.n)
    }

    /// Slot spans `[start, end)` of the first `count` iterations, for
    /// schedule-targeted adversaries (Eve knows the algorithm).
    pub fn iteration_spans(&self, count: u32) -> Vec<(u64, u64)> {
        let mut spans = Vec::with_capacity(count as usize);
        let mut start = 0u64;
        for k in 0..count {
            let i = self.params.first_iteration + k;
            let len = self.iteration_rounds(i);
            spans.push((start, start + len));
            start += len;
        }
        spans
    }
}

impl Protocol for MultiCast {
    type Node = McNode;

    fn num_nodes(&self) -> u32 {
        self.n as u32
    }

    fn segment(&mut self, _start_slot: u64) -> SlotProfile {
        let i = self.next_iteration;
        self.next_iteration += 1;
        let p = self.params.p(i);
        SlotProfile {
            p1: p,
            p2: p,
            channels: self.n / 2,
            virt_channels: self.n / 2,
            round_len: 1,
            seg_len: self.iteration_rounds(i),
            seg_major: i,
            seg_minor: 0,
            step: 0,
        }
    }

    fn make_node(&self, _id: u32, is_source: bool) -> McNode {
        McNode::new(is_source, self.params.halt_ratio)
    }
}

/// Node state shared by `MultiCastCore`, `MultiCast`, and `MultiCast(C)`:
/// the "count noisy slots, halt when quiet" node of Figures 1, 2 and 5.
///
/// All schedule information (iteration length, action probability, channel
/// count) arrives through the [`SlotProfile`], so the same node state drives
/// all three protocols; thresholds are computed in *rounds*
/// (`profile.rounds()`), which equals slots except under `MultiCast(C)`'s
/// round simulation.
#[derive(Clone, Debug)]
pub struct McNode {
    informed: bool,
    /// Noisy listening slots observed in the current iteration (`N_n`).
    noisy: u64,
    /// Halt iff `noisy < halt_ratio · R_i · p_i` at an iteration boundary.
    halt_ratio: f64,
}

impl McNode {
    pub fn new(is_source: bool, halt_ratio: f64) -> Self {
        Self {
            informed: is_source,
            noisy: 0,
            halt_ratio,
        }
    }

    /// Noisy-slot count within the current iteration (test/diagnostic hook).
    pub fn noisy_count(&self) -> u64 {
        self.noisy
    }
}

impl ProtocolNode for McNode {
    fn on_selected(&mut self, profile: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
        let ch = rng.gen_range(profile.virt_channels);
        match coin {
            // coin == 1: listen (informed nodes listen too — they keep
            // counting noise to decide termination).
            Coin::One => Action::Listen { ch },
            // coin == 2: broadcast if informed, else stay idle.
            Coin::Two => {
                if self.informed {
                    Action::Broadcast {
                        ch,
                        payload: Payload::Data,
                    }
                } else {
                    Action::Idle
                }
            }
        }
    }

    fn on_feedback(&mut self, _profile: &SlotProfile, fb: Feedback) {
        match fb {
            Feedback::Noise => self.noisy += 1,
            Feedback::Message(Payload::Data) => self.informed = true,
            _ => {}
        }
    }

    fn on_boundary(&mut self, profile: &SlotProfile) -> BoundaryDecision {
        let threshold = self.halt_ratio * profile.rounds() as f64 * profile.p();
        let decision = if (self.noisy as f64) < threshold {
            BoundaryDecision::Halt
        } else {
            BoundaryDecision::Continue
        };
        self.noisy = 0;
        decision
    }

    fn is_informed(&self) -> bool {
        self.informed
    }

    fn extra(&self) -> NodeExtra {
        let mut e = NodeExtra::default();
        e.push("informed", if self.informed { 1.0 } else { 0.0 });
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_sim::{EngineConfig, Simulation};

    fn quick_params() -> McParams {
        McParams::default()
    }

    #[test]
    fn completes_and_halts_without_adversary() {
        let mut proto = MultiCast::with_params(64, quick_params());
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(10_000_000))
            .run(1);
        assert!(out.all_informed, "all nodes must learn m");
        assert!(out.all_halted, "all nodes must terminate");
        assert_eq!(out.safety_violations(), 0);
    }

    #[test]
    fn without_jamming_terminates_in_first_iteration() {
        let mut proto = MultiCast::with_params(64, quick_params());
        let r6 = proto.iteration_rounds(6);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(10_000_000))
            .run(2);
        assert_eq!(out.slots, r6, "T = 0 should finish at the first boundary");
    }

    #[test]
    fn cost_without_jamming_is_about_2rp() {
        let mut proto = MultiCast::with_params(64, quick_params());
        let r6 = proto.iteration_rounds(6);
        let expected = 2.0 * r6 as f64 / 64.0; // 2·R·p
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(10_000_000))
            .run(3);
        let mean = out.mean_cost();
        assert!(
            (mean - expected).abs() / expected < 0.25,
            "mean cost {mean} should be within 25% of 2Rp = {expected}"
        );
    }

    #[test]
    fn iteration_spans_tile_the_timeline() {
        let proto = MultiCast::with_params(64, quick_params());
        let spans = proto.iteration_spans(4);
        assert_eq!(spans[0].0, 0);
        for w in spans.windows(2) {
            assert_eq!(w[0].1, w[1].0, "spans must be contiguous");
        }
        assert_eq!(spans[1].1 - spans[1].0, proto.iteration_rounds(7));
    }

    #[test]
    fn segment_profiles_follow_the_schedule() {
        let mut proto = MultiCast::with_params(64, quick_params());
        let s6 = proto.segment(0);
        assert_eq!(s6.seg_major, 6);
        assert_eq!(s6.p1, 1.0 / 64.0);
        assert_eq!(s6.channels, 32);
        let s7 = proto.segment(s6.seg_len);
        assert_eq!(s7.seg_major, 7);
        assert_eq!(s7.p1, 1.0 / 128.0);
        assert!(s7.seg_len > 4 * s6.seg_len, "lengths grow faster than 4x");
    }

    #[test]
    fn node_counts_noise_and_resets_at_boundary() {
        let profile = SlotProfile {
            p1: 0.25,
            p2: 0.25,
            channels: 4,
            virt_channels: 4,
            round_len: 1,
            seg_len: 100,
            seg_major: 6,
            seg_minor: 0,
            step: 0,
        };
        let mut node = McNode::new(false, 0.5);
        for _ in 0..20 {
            node.on_feedback(&profile, Feedback::Noise);
        }
        assert_eq!(node.noisy_count(), 20);
        // threshold = 0.5 · 100 · 0.25 = 12.5; 20 >= 12.5 → stay.
        assert_eq!(node.on_boundary(&profile), BoundaryDecision::Continue);
        assert_eq!(node.noisy_count(), 0, "counter resets");
        // Fresh iteration with little noise → halt.
        for _ in 0..5 {
            node.on_feedback(&profile, Feedback::Noise);
        }
        assert_eq!(node.on_boundary(&profile), BoundaryDecision::Halt);
    }

    #[test]
    fn uninformed_node_never_broadcasts() {
        let profile = SlotProfile {
            p1: 0.5,
            p2: 0.5,
            channels: 4,
            virt_channels: 4,
            round_len: 1,
            seg_len: 10,
            seg_major: 6,
            seg_minor: 0,
            step: 0,
        };
        let mut node = McNode::new(false, 0.5);
        let mut rng = Xoshiro256::seeded(1);
        for _ in 0..100 {
            assert_eq!(
                node.on_selected(&profile, Coin::Two, &mut rng),
                Action::Idle
            );
        }
        node.on_feedback(&profile, Feedback::Message(Payload::Data));
        assert!(matches!(
            node.on_selected(&profile, Coin::Two, &mut rng),
            Action::Broadcast {
                payload: Payload::Data,
                ..
            }
        ));
    }

    #[test]
    fn beacon_messages_do_not_inform() {
        // MultiCast never sends beacons, but the node must be robust anyway.
        let profile = SlotProfile {
            p1: 0.5,
            p2: 0.5,
            channels: 4,
            virt_channels: 4,
            round_len: 1,
            seg_len: 10,
            seg_major: 6,
            seg_minor: 0,
            step: 0,
        };
        let mut node = McNode::new(false, 0.5);
        node.on_feedback(&profile, Feedback::Message(Payload::Beacon));
        assert!(!node.is_informed());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_n() {
        MultiCast::new(100);
    }
}
