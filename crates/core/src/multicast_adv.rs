//! `MultiCastAdv` (Section 6, Figure 4): resource-competitive broadcast
//! knowing **neither** `n` nor `T`.
//!
//! The algorithm guesses `n` through an epoch/phase structure: epoch `i` has
//! phases `j = 0 … i−1`; phase `(i, j)` uses `2^j` channels (guessing
//! `n ≈ 2^{j+1}`), runs two steps of `R(i,j) = Θ(2^{2α(i−j)}·i³)` slots each
//! with action probability `p(i,j) = 2^{−α(i−j)}/2`, where `α ∈ (0, 1/4)` is
//! the tunable exponent of Theorem 6.10.
//!
//! * **Step one** disseminates: uninformed nodes listen, informed nodes
//!   broadcast `m`; an uninformed listener that hears `m` becomes informed
//!   immediately.
//! * **Step two** measures: every node listens or broadcasts with
//!   probability `p` each (uninformed nodes broadcast the beacon `±`), and
//!   counts message slots (`Nm`), message-or-beacon slots (`N'm`), noisy
//!   slots (`Nn`) and silent slots (`Ns`). Status changes only at the end of
//!   the step: hear `m` at all → informed; informed with `Nm`, `Ns` high and
//!   `N'm` low → **helper** (the `N'm`/`Ns` combination pins the phase to
//!   `j = lg n − 1`, Lemmas 6.1–6.3); a helper that has waited the required
//!   number of epochs and hears almost no noise in its helper phase →
//!   **halt**.
//!
//! The two-stage helper/halt termination is what keeps early terminators
//! from stranding stragglers: all nodes are informed before the first helper
//! appears (Lemma 6.4), and all nodes are helpers before the first halt
//! (Lemma 6.5) — so departures only ever *reduce* noise.
//!
//! Guarantees (Theorem 6.10, w.h.p.): every node receives `m` and halts
//! within `Õ(T/n^{1−2α} + n^{2α})` slots, spending
//! `Õ(√(T/n^{1−2α}) + n^{2α})` energy.
//!
//! With a channel cap (`AdvParams::channel_cap = Some(C)`) this type becomes
//! `MultiCastAdv(C)` (Section 7, Figure 6): phases with `j > lg C` are cut
//! off and the `N'm` condition is dropped at `j = lg C`, where helpers now
//! form (Theorem 7.2).

use crate::params::{lg_pow2, AdvParams};
use rcb_sim::{
    Action, BoundaryDecision, Coin, Feedback, NodeExtra, Payload, Protocol, ProtocolNode,
    SlotProfile, Xoshiro256,
};

/// Node status in `MultiCastAdv` (halting is signalled via
/// [`BoundaryDecision::Halt`] rather than stored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvStatus {
    Uninformed,
    Informed,
    Helper,
}

/// One scheduled step of an `(i, j)`-phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdvSegment {
    pub epoch: u32,
    pub phase: u32,
    pub step: u8,
    pub start: u64,
    pub len: u64,
}

/// Lazy walker over the epoch/phase/step schedule. Shared by the protocol
/// (to produce segment profiles) and by schedule-targeted adversaries (Eve
/// knows the algorithm, so the schedule is public information).
#[derive(Clone, Debug)]
pub struct AdvScheduleIter {
    params: AdvParams,
    epoch: u32,
    phase: u32,
    step: u8,
    start: u64,
}

impl AdvScheduleIter {
    pub fn new(params: AdvParams) -> Self {
        Self {
            params,
            epoch: 1,
            phase: 0,
            step: 0,
            start: 0,
        }
    }
}

impl Iterator for AdvScheduleIter {
    type Item = AdvSegment;

    fn next(&mut self) -> Option<AdvSegment> {
        let seg = AdvSegment {
            epoch: self.epoch,
            phase: self.phase,
            step: self.step,
            start: self.start,
            len: self.params.r(self.epoch, self.phase),
        };
        self.start = self.start.saturating_add(seg.len);
        if self.step == 0 {
            self.step = 1;
        } else {
            self.step = 0;
            if self.phase < self.params.max_phase(self.epoch) {
                self.phase += 1;
            } else {
                self.phase = 0;
                self.epoch += 1;
            }
        }
        Some(seg)
    }
}

/// The `MultiCastAdv` protocol (schedule side).
///
/// ```
/// use rcb_core::{AdvParams, MultiCastAdv};
/// use rcb_sim::Simulation;
///
/// // Knows neither n nor T; α ∈ (0, 1/4) trades exponent for constants.
/// let params = AdvParams { alpha: 0.24, ..AdvParams::default() };
/// let mut protocol = MultiCastAdv::with_params(16, params);
/// let outcome = Simulation::new(&mut protocol).run(7);
/// assert!(outcome.all_informed && outcome.all_halted);
/// // Every node discovered lg n implicitly: helpers form at j = lg n − 1.
/// for node in &outcome.nodes {
///     assert_eq!(node.extra.get("helper_phase"), Some(3.0));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MultiCastAdv {
    n: u64,
    params: AdvParams,
    schedule: AdvScheduleIter,
}

impl MultiCastAdv {
    /// Create for a network of `n` nodes. `n` is used **only** to size the
    /// simulated network — neither the schedule nor the node logic reads it
    /// (that is the point of the algorithm).
    pub fn new(n: u64) -> Self {
        Self::with_params(n, AdvParams::default())
    }

    pub fn with_params(n: u64, params: AdvParams) -> Self {
        assert!(n >= 4, "need at least 4 nodes, got {n}");
        let params = params.validated();
        Self {
            n,
            params,
            schedule: AdvScheduleIter::new(params),
        }
    }

    /// `MultiCastAdv(C)`: cut off phases above `lg C` (Section 7, Figure 6).
    pub fn with_channel_cap(n: u64, c: u64, params: AdvParams) -> Self {
        Self::with_params(
            n,
            AdvParams {
                channel_cap: Some(c),
                ..params
            },
        )
    }

    pub fn params(&self) -> &AdvParams {
        &self.params
    }

    /// A fresh schedule walker (for adversaries and tests).
    pub fn schedule_iter(&self) -> AdvScheduleIter {
        AdvScheduleIter::new(self.params)
    }
}

impl Protocol for MultiCastAdv {
    type Node = AdvNode;

    fn num_nodes(&self) -> u32 {
        self.n as u32
    }

    fn segment(&mut self, start_slot: u64) -> SlotProfile {
        let seg = self.schedule.next().expect("schedule is infinite");
        debug_assert_eq!(seg.start, start_slot, "schedule cursor out of sync");
        let p = self.params.p(seg.epoch, seg.phase);
        let channels = 1u64 << seg.phase;
        SlotProfile {
            p1: p,
            // Step one: only the coin-1 action exists (listen-or-broadcast by
            // status). Step two: coin 1 = listen, coin 2 = broadcast.
            p2: if seg.step == 1 { p } else { 0.0 },
            channels,
            virt_channels: channels,
            round_len: 1,
            seg_len: seg.len,
            seg_major: seg.epoch,
            seg_minor: seg.phase,
            step: seg.step,
        }
    }

    fn make_node(&self, _id: u32, is_source: bool) -> AdvNode {
        AdvNode::new(is_source, self.params)
    }
}

/// Per-node state of `MultiCastAdv` / `MultiCastAdv(C)`.
#[derive(Clone, Debug)]
pub struct AdvNode {
    status: AdvStatus,
    /// `(iˆ, jˆ)`: the phase in which this node became a helper.
    helper_at: Option<(u32, u32)>,
    params: AdvParams,
    /// Step-two counters: message, message-or-beacon, noisy, silent slots.
    nm: u64,
    nm_prime: u64,
    nn: u64,
    ns: u64,
}

impl AdvNode {
    pub fn new(is_source: bool, params: AdvParams) -> Self {
        Self {
            status: if is_source {
                AdvStatus::Informed
            } else {
                AdvStatus::Uninformed
            },
            helper_at: None,
            params,
            nm: 0,
            nm_prime: 0,
            nn: 0,
            ns: 0,
        }
    }

    pub fn status(&self) -> AdvStatus {
        self.status
    }

    pub fn helper_at(&self) -> Option<(u32, u32)> {
        self.helper_at
    }

    /// Is phase `j` the cut-off phase `lg C` of `MultiCastAdv(C)`?
    fn at_channel_cap(&self, j: u32) -> bool {
        self.params.channel_cap.is_some_and(|c| j == lg_pow2(c))
    }

    fn reset_counters(&mut self) {
        self.nm = 0;
        self.nm_prime = 0;
        self.nn = 0;
        self.ns = 0;
    }
}

impl ProtocolNode for AdvNode {
    fn on_selected(&mut self, profile: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
        let ch = rng.gen_range(profile.virt_channels);
        if profile.step == 0 {
            // Step one (Figure 4 lines 2–8): the single coin means "listen"
            // for uninformed nodes and "broadcast m" for everyone else.
            debug_assert_eq!(coin, Coin::One, "step one has no second coin");
            if self.status == AdvStatus::Uninformed {
                Action::Listen { ch }
            } else {
                Action::Broadcast {
                    ch,
                    payload: Payload::Data,
                }
            }
        } else {
            // Step two (lines 10–20): coin 1 listens, coin 2 broadcasts —
            // the message if informed, the ± beacon if not.
            match coin {
                Coin::One => Action::Listen { ch },
                Coin::Two => Action::Broadcast {
                    ch,
                    payload: if self.status == AdvStatus::Uninformed {
                        Payload::Beacon
                    } else {
                        Payload::Data
                    },
                },
            }
        }
    }

    fn on_feedback(&mut self, profile: &SlotProfile, fb: Feedback) {
        if profile.step == 0 {
            // Step one: an uninformed listener that hears m is informed
            // immediately (line 6).
            if fb == Feedback::Message(Payload::Data) && self.status == AdvStatus::Uninformed {
                self.status = AdvStatus::Informed;
            }
        } else {
            // Step two: count, but never change status mid-step (lines
            // 14–17; the "critically, even if an uninformed node hears m…"
            // remark of Section 6.2).
            match fb {
                Feedback::Message(Payload::Data) => {
                    self.nm += 1;
                    self.nm_prime += 1;
                }
                Feedback::Message(Payload::Beacon) => self.nm_prime += 1,
                // Foreign multi-message payloads count like the beacon: a
                // decodable transmission that is not m itself.
                Feedback::Message(Payload::Msg(_)) => self.nm_prime += 1,
                Feedback::Noise => self.nn += 1,
                Feedback::Silence => self.ns += 1,
            }
        }
    }

    fn on_boundary(&mut self, profile: &SlotProfile) -> BoundaryDecision {
        if profile.step == 0 {
            // Entering step two: counters start from zero (Figure 4 line 9).
            self.reset_counters();
            return BoundaryDecision::Continue;
        }
        // End of step two: the three checks of Figure 4 lines 21–23, in
        // order.
        let (i, j) = (profile.seg_major, profile.seg_minor);
        let r = profile.seg_len as f64;
        let p = profile.p1;
        let rp = r * p;
        let rp2 = r * p * p;

        // Check 1: uninformed node that heard m during step two → informed.
        if self.status == AdvStatus::Uninformed && self.nm >= 1 {
            self.status = AdvStatus::Informed;
        }

        // Check 2: informed → helper when the phase looks like the "good"
        // phase (j = lg n − 1, or j = lg C under a channel cap, where the
        // N'm condition is dropped — Figure 6 line 23).
        if self.status == AdvStatus::Informed
            && (self.nm as f64) >= self.params.theta_m * rp2
            && (self.ns as f64) >= self.params.theta_s * rp
            && (self.at_channel_cap(j) || (self.nm_prime as f64) <= self.params.theta_m_prime * rp2)
        {
            self.status = AdvStatus::Helper;
            self.helper_at = Some((i, j));
        }

        // Check 3: a helper halts in its helper phase once enough epochs have
        // passed and its helper phase is almost noise-free.
        if self.status == AdvStatus::Helper {
            if let Some((i_hat, j_hat)) = self.helper_at {
                if i - i_hat >= self.params.halt_delay
                    && j == j_hat
                    && (self.nn as f64) <= self.params.theta_n * rp
                {
                    return BoundaryDecision::Halt;
                }
            }
        }
        BoundaryDecision::Continue
    }

    fn is_informed(&self) -> bool {
        self.status != AdvStatus::Uninformed
    }

    fn status_label(&self) -> &'static str {
        match self.status {
            AdvStatus::Uninformed => "uninformed",
            AdvStatus::Informed => "informed",
            AdvStatus::Helper => "helper",
        }
    }

    fn extra(&self) -> NodeExtra {
        let mut e = NodeExtra::default();
        e.push(
            "status",
            match self.status {
                AdvStatus::Uninformed => 0.0,
                AdvStatus::Informed => 1.0,
                AdvStatus::Helper => 2.0,
            },
        );
        if let Some((i, j)) = self.helper_at {
            e.push("helper_epoch", i as f64);
            e.push("helper_phase", j as f64);
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_sim::{EngineConfig, Simulation};

    #[test]
    fn schedule_iterates_epochs_phases_steps() {
        let params = AdvParams::default().validated();
        let segs: Vec<AdvSegment> = AdvScheduleIter::new(params).take(10).collect();
        // Epoch 1: one phase (j = 0), two steps. Epoch 2: phases 0, 1.
        assert_eq!((segs[0].epoch, segs[0].phase, segs[0].step), (1, 0, 0));
        assert_eq!((segs[1].epoch, segs[1].phase, segs[1].step), (1, 0, 1));
        assert_eq!((segs[2].epoch, segs[2].phase, segs[2].step), (2, 0, 0));
        assert_eq!((segs[3].epoch, segs[3].phase, segs[3].step), (2, 0, 1));
        assert_eq!((segs[4].epoch, segs[4].phase, segs[4].step), (2, 1, 0));
        assert_eq!((segs[5].epoch, segs[5].phase, segs[5].step), (2, 1, 1));
        assert_eq!((segs[6].epoch, segs[6].phase, segs[6].step), (3, 0, 0));
        // Spans tile the timeline.
        for w in segs.windows(2) {
            assert_eq!(w[0].start + w[0].len, w[1].start);
        }
        // Both steps of a phase have the same length.
        assert_eq!(segs[0].len, segs[1].len);
    }

    #[test]
    fn channel_cap_cuts_phases() {
        let params = AdvParams {
            channel_cap: Some(4),
            ..AdvParams::default()
        }
        .validated();
        let segs: Vec<AdvSegment> = AdvScheduleIter::new(params).take(40).collect();
        assert!(
            segs.iter().all(|s| s.phase <= 2),
            "phases must stop at lg C = 2"
        );
        // Epoch 4 and later have exactly 3 phases (j = 0, 1, 2).
        let e4: Vec<_> = segs.iter().filter(|s| s.epoch == 4).collect();
        assert_eq!(e4.len(), 6, "3 phases x 2 steps");
    }

    #[test]
    fn profiles_match_formulas() {
        let mut proto = MultiCastAdv::new(16);
        let s = proto.segment(0);
        assert_eq!((s.seg_major, s.seg_minor, s.step), (1, 0, 0));
        assert_eq!(s.channels, 1);
        let alpha = proto.params().alpha;
        assert!((s.p1 - 2f64.powf(-alpha) / 2.0).abs() < 1e-12);
        assert_eq!(s.p2, 0.0, "step one has no broadcast coin");
        let s2 = proto.segment(s.seg_len);
        assert_eq!(s2.step, 1);
        assert_eq!(
            s2.p1, s2.p2,
            "step two: listen and broadcast equally likely"
        );
    }

    #[test]
    fn step_one_roles_follow_status() {
        let params = AdvParams::default().validated();
        let profile = SlotProfile {
            p1: 0.25,
            p2: 0.0,
            channels: 4,
            virt_channels: 4,
            round_len: 1,
            seg_len: 100,
            seg_major: 5,
            seg_minor: 2,
            step: 0,
        };
        let mut rng = Xoshiro256::seeded(3);
        let mut un = AdvNode::new(false, params);
        assert!(matches!(
            un.on_selected(&profile, Coin::One, &mut rng),
            Action::Listen { .. }
        ));
        let mut src = AdvNode::new(true, params);
        assert!(matches!(
            src.on_selected(&profile, Coin::One, &mut rng),
            Action::Broadcast {
                payload: Payload::Data,
                ..
            }
        ));
    }

    #[test]
    fn step_two_uninformed_broadcasts_beacon() {
        let params = AdvParams::default().validated();
        let profile = SlotProfile {
            p1: 0.25,
            p2: 0.25,
            channels: 4,
            virt_channels: 4,
            round_len: 1,
            seg_len: 100,
            seg_major: 5,
            seg_minor: 2,
            step: 1,
        };
        let mut rng = Xoshiro256::seeded(4);
        let mut un = AdvNode::new(false, params);
        assert!(matches!(
            un.on_selected(&profile, Coin::Two, &mut rng),
            Action::Broadcast {
                payload: Payload::Beacon,
                ..
            }
        ));
    }

    #[test]
    fn step_two_defers_informing_to_boundary() {
        let params = AdvParams::default().validated();
        let profile = SlotProfile {
            p1: 0.25,
            p2: 0.25,
            channels: 4,
            virt_channels: 4,
            round_len: 1,
            seg_len: 100,
            seg_major: 5,
            seg_minor: 2,
            step: 1,
        };
        let mut node = AdvNode::new(false, params);
        node.on_feedback(&profile, Feedback::Message(Payload::Data));
        assert!(!node.is_informed(), "status frozen during step two");
        node.on_boundary(&profile);
        assert!(node.is_informed(), "check 1 applies at the boundary");
    }

    #[test]
    fn counters_track_feedback_kinds() {
        let params = AdvParams::default().validated();
        let step2 = SlotProfile {
            p1: 0.25,
            p2: 0.25,
            channels: 4,
            virt_channels: 4,
            round_len: 1,
            seg_len: 100,
            seg_major: 5,
            seg_minor: 2,
            step: 1,
        };
        let mut node = AdvNode::new(true, params);
        node.on_feedback(&step2, Feedback::Message(Payload::Data));
        node.on_feedback(&step2, Feedback::Message(Payload::Beacon));
        node.on_feedback(&step2, Feedback::Noise);
        node.on_feedback(&step2, Feedback::Silence);
        assert_eq!((node.nm, node.nm_prime, node.nn, node.ns), (1, 2, 1, 1));
        // Entering the next step two resets them.
        let step1 = SlotProfile { step: 0, ..step2 };
        node.on_boundary(&step1);
        assert_eq!((node.nm, node.nm_prime, node.nn, node.ns), (0, 0, 0, 0));
    }

    #[test]
    fn helper_promotion_and_halt_gates() {
        let params = AdvParams::default().validated();
        let profile = SlotProfile {
            p1: 0.1,
            p2: 0.1,
            channels: 8,
            virt_channels: 8,
            round_len: 1,
            seg_len: 10_000,
            seg_major: 10,
            seg_minor: 3,
            step: 1,
        };
        let r = 10_000f64;
        let (p, rp, rp2) = (0.1, 10_000.0 * 0.1, 10_000.0 * 0.1 * 0.1);
        let _ = p;
        let mut node = AdvNode::new(true, params);
        // Satisfy Nm and Ns, keep N'm low → helper.
        node.nm = (params.theta_m * rp2) as u64 + 1;
        node.nm_prime = node.nm;
        node.ns = (params.theta_s * rp) as u64 + 1;
        node.nn = 0;
        assert_eq!(node.on_boundary(&profile), BoundaryDecision::Continue);
        assert_eq!(node.status(), AdvStatus::Helper);
        assert_eq!(node.helper_at(), Some((10, 3)));
        let _ = r;

        // Same phase, later epoch but not late enough → no halt.
        let early = SlotProfile {
            seg_major: 11,
            ..profile
        };
        node.reset_counters();
        assert_eq!(node.on_boundary(&early), BoundaryDecision::Continue);

        // Late enough, same phase, quiet → halt.
        let late = SlotProfile {
            seg_major: 10 + params.halt_delay,
            ..profile
        };
        node.reset_counters();
        assert_eq!(node.on_boundary(&late), BoundaryDecision::Halt);

        // Wrong phase never halts.
        let mut node2 = AdvNode::new(true, params);
        node2.status = AdvStatus::Helper;
        node2.helper_at = Some((10, 3));
        let wrong_phase = SlotProfile {
            seg_major: 20,
            seg_minor: 4,
            ..profile
        };
        assert_eq!(node2.on_boundary(&wrong_phase), BoundaryDecision::Continue);

        // Noisy helper phase never halts.
        let mut node3 = AdvNode::new(true, params);
        node3.status = AdvStatus::Helper;
        node3.helper_at = Some((10, 3));
        node3.nn = rp as u64; // all listening slots noisy
        assert_eq!(node3.on_boundary(&late), BoundaryDecision::Continue);
    }

    #[test]
    fn nm_prime_gate_blocks_promotion_off_cap() {
        let params = AdvParams::default().validated();
        let profile = SlotProfile {
            p1: 0.1,
            p2: 0.1,
            channels: 8,
            virt_channels: 8,
            round_len: 1,
            seg_len: 10_000,
            seg_major: 10,
            seg_minor: 3,
            step: 1,
        };
        let (rp, rp2) = (1_000.0, 100.0);
        let mut node = AdvNode::new(true, params);
        node.nm = (params.theta_m * rp2) as u64 + 1;
        node.ns = (params.theta_s * rp) as u64 + 1;
        node.nm_prime = (params.theta_m_prime * rp2) as u64 + 10; // too many beacons
        node.on_boundary(&profile);
        assert_eq!(node.status(), AdvStatus::Informed, "N'm gate must block");

        // With a channel cap and j == lg C, the N'm condition is dropped.
        let capped = AdvParams {
            channel_cap: Some(8),
            ..AdvParams::default()
        }
        .validated();
        let mut node2 = AdvNode::new(true, capped);
        node2.nm = (capped.theta_m * rp2) as u64 + 1;
        node2.ns = (capped.theta_s * rp) as u64 + 1;
        node2.nm_prime = u64::MAX / 2;
        node2.on_boundary(&profile); // seg_minor = 3 = lg 8
        assert_eq!(
            node2.status(),
            AdvStatus::Helper,
            "cap phase drops the N'm gate"
        );
    }

    /// End-to-end smoke test: without an adversary, a small network must
    /// inform everyone and halt everyone. (Timing/scaling claims are covered
    /// by integration tests and experiment E8/E9.)
    #[test]
    fn completes_without_adversary_n16() {
        let mut proto = MultiCastAdv::new(16);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(500_000_000))
            .run(7);
        assert!(out.all_informed, "informed: {}/16", out.informed_count());
        assert!(
            out.all_halted,
            "halted: {:?}",
            out.nodes.iter().filter(|n| n.halted_at.is_none()).count()
        );
        assert_eq!(out.safety_violations(), 0);
        // Helpers must have formed at j = lg n − 1 = 3 (experiment E9's
        // property, checked here for one seed).
        for node in &out.nodes {
            assert_eq!(
                node.extra.get("helper_phase"),
                Some(3.0),
                "node {}",
                node.id
            );
        }
    }
}
