//! # rcb-core — the broadcast protocols of Chen & Zheng, SPAA 2019
//!
//! Implementations of every algorithm in *Fast and Resource Competitive
//! Broadcast in Multi-channel Radio Networks*, plus the baselines the
//! evaluation compares against. All of them run on the
//! [`rcb-sim`](rcb_sim) substrate, which implements the paper's
//! communication and adversary model exactly.
//!
//! | Type | Paper | Knows | Channels | Time (w.h.p.) | Energy/node (w.h.p.) |
//! |------|-------|-------|----------|---------------|----------------------|
//! | [`MultiCastCore`] | §4, Fig. 1 | `n`, `T` | `n/2` | `O(T/n + lg T̂)` | `O(T/n + lg T̂)` |
//! | [`MultiCast`] | §5, Fig. 2 | `n` | `n/2` | `O(T/n + lg²n)` | `O(√(T/n)·√lg T·lg n + lg²n)` |
//! | [`MultiCastAdv`] | §6, Fig. 4 | — | grows | `Õ(T/n^{1−2α} + n^{2α})` | `Õ(√(T/n^{1−2α}) + n^{2α})` |
//! | [`MultiCastC`] | §7, Fig. 5 | `n` | `C ≤ n/2` | `O(T/C + (n/C)lg²n)` | as `MultiCast` |
//! | [`MultiCastAdv`] with cap | §7, Fig. 6 | — | `≤ C` | `Õ(T/C^{1−2α} + n^{2+2α}/C^{2−2α})` | `Õ(√(T/C^{1−2α}) + …)` |
//!
//! [`MultiHopCast`] extends the line-up beyond the paper: a relay-capable
//! variant for multi-hop topologies (`rcb_sim::Topology`), where informed
//! nodes re-run the sender schedule until the source's whole reachable
//! component knows the message. [`MultiMessageCast`] extends it again to
//! `k` concurrent payloads (multi-message broadcast, arXiv:1610.02931):
//! partial holders relay a random message they know, and the engine tracks
//! each message's own completion (`rcb_sim::RunOutcome::messages`).
//!
//! Baselines live in [`baseline`]: the naive multi-channel epidemic from the
//! paper's introduction, a single-channel resource-competitive comparator
//! (the SPAA'14 bounds, realised as `MultiCast(C = 1)`), and classical
//! `Decay` as an energy-naive control.
//!
//! ## Quick start
//!
//! ```
//! use rcb_core::MultiCast;
//! use rcb_adversary::UniformFraction;
//! use rcb_sim::Simulation;
//!
//! let n = 64;            // nodes (power of two); the protocol uses n/2 channels
//! let t = 20_000;        // Eve's energy budget
//! let mut protocol = MultiCast::new(n);
//! let mut eve = UniformFraction::new(t, 0.5, 7);
//! let outcome = Simulation::new(&mut protocol).adversary(&mut eve).run(42);
//! assert!(outcome.all_informed && outcome.all_halted);
//! // Resource competitiveness: every node spent far less than Eve.
//! assert!(outcome.max_cost() < outcome.eve_spent / 2);
//! ```

pub mod baseline;
pub mod limited;
pub mod multicast;
pub mod multicast_adv;
pub mod multicast_core;
pub mod multihop;
pub mod multimessage;
pub mod params;
pub mod theory;

pub use limited::MultiCastC;
pub use multicast::{McNode, MultiCast};
pub use multicast_adv::{AdvNode, AdvScheduleIter, AdvSegment, AdvStatus, MultiCastAdv};
pub use multicast_core::MultiCastCore;
pub use multihop::{MultiHopCast, MultiHopNode};
pub use multimessage::{MultiMessageCast, MultiMessageNode};
pub use params::{AdvParams, CoreParams, McParams};
