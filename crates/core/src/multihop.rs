//! `MultiHopCast`: the relay-capable broadcast variant for multi-hop
//! topologies.
//!
//! The paper's protocols assume a single-hop network: one successful
//! transmission can inform any listener. Over a connectivity graph
//! (`rcb_sim::Topology`) the message must instead *propagate*, so every
//! informed node — not just the source — re-runs the sender schedule:
//!
//! * with probability `p` a node draws the **listen** coin; uninformed
//!   nodes listen on a uniformly random channel (informed nodes stay idle);
//! * with probability `p` a node draws the **broadcast** coin; informed
//!   nodes broadcast `m` on a uniformly random channel (uninformed nodes
//!   stay idle).
//!
//! This is exactly the per-slot behaviour of `MultiCast` (Figure 2) with a
//! fixed action probability instead of the geometrically decaying `p_i` —
//! the decay exists to price Eve out over a *single* hop and would starve
//! a deep topology (a diameter-`D` line needs `Θ(D)` successful
//! rendezvous, each costing `Θ(C/p²)` expected slots).
//!
//! `MultiHopCast` has **no termination detection** (distributed multi-hop
//! halting without knowing the topology is follow-up work; see ROADMAP):
//! run it with `stop_when_all_informed`, under which the engine stops once
//! every node *reachable* from the source is informed.

use rcb_sim::{
    Action, BoundaryDecision, Coin, Feedback, Payload, Protocol, ProtocolNode, SlotProfile,
    Xoshiro256,
};

/// The relay-capable multi-hop broadcast protocol (schedule side).
#[derive(Clone, Debug)]
pub struct MultiHopCast {
    n: u64,
    channels: u64,
    p: f64,
}

impl MultiHopCast {
    /// `n` nodes (a power of two ≥ 4) on `n/2` channels with the default
    /// action probability.
    pub fn new(n: u64) -> Self {
        Self::with_config(n, n / 2, 0.25)
    }

    /// Fully configurable: `channels ≥ 1` physical channels and per-slot
    /// action probability `p ∈ (0, 0.5]` (each coin class gets `p`).
    pub fn with_config(n: u64, channels: u64, p: f64) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4, got {n}"
        );
        assert!(channels >= 1, "need at least one channel");
        assert!(p > 0.0 && p <= 0.5, "p must be in (0, 0.5], got {p}");
        Self { n, channels, p }
    }
}

impl Protocol for MultiHopCast {
    type Node = MultiHopNode;

    fn num_nodes(&self) -> u32 {
        self.n as u32
    }

    fn segment(&mut self, _start_slot: u64) -> SlotProfile {
        SlotProfile {
            p1: self.p,
            p2: self.p,
            channels: self.channels,
            virt_channels: self.channels,
            round_len: 1,
            // One giant segment: there are no boundary checks to run.
            seg_len: 1 << 50,
            seg_major: 0,
            seg_minor: 0,
            step: 0,
        }
    }

    fn make_node(&self, _id: u32, is_source: bool) -> MultiHopNode {
        MultiHopNode {
            informed: is_source,
        }
    }
}

/// Node state: informed nodes are relay sources, nothing else to track.
#[derive(Clone, Debug)]
pub struct MultiHopNode {
    informed: bool,
}

impl ProtocolNode for MultiHopNode {
    fn on_selected(&mut self, profile: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
        let ch = rng.gen_range(profile.virt_channels);
        match coin {
            Coin::One if !self.informed => Action::Listen { ch },
            Coin::Two if self.informed => Action::Broadcast {
                ch,
                payload: Payload::Data,
            },
            _ => Action::Idle,
        }
    }

    fn on_feedback(&mut self, _profile: &SlotProfile, fb: Feedback) {
        if fb == Feedback::Message(Payload::Data) {
            self.informed = true;
        }
    }

    fn on_boundary(&mut self, _profile: &SlotProfile) -> BoundaryDecision {
        BoundaryDecision::Continue
    }

    fn is_informed(&self) -> bool {
        self.informed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::UniformFraction;
    use rcb_sim::{EngineConfig, Simulation, Topology};

    fn informed_cfg() -> EngineConfig {
        EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(5_000_000)
        }
    }

    #[test]
    fn single_hop_completes_like_an_epidemic() {
        let mut proto = MultiHopCast::new(32);
        let out = Simulation::new(&mut proto).config(informed_cfg()).run(1);
        assert!(out.all_informed, "{out:?}");
        assert_eq!(out.safety_violations(), 0);
    }

    #[test]
    fn relays_carry_the_message_down_a_line() {
        let mut proto = MultiHopCast::with_config(16, 4, 0.25);
        let out = Simulation::new(&mut proto)
            .topology(&Topology::Line)
            .config(informed_cfg())
            .run(2);
        assert!(out.all_informed, "{out:?}");
        // Every non-source node was informed strictly after the source, and
        // someone beyond the source's only neighbor got informed — i.e. a
        // relay (not the source) delivered at least one hop.
        let far_informed = out.nodes[2..].iter().any(|n| n.informed_at.is_some());
        assert!(far_informed);
    }

    #[test]
    fn line_time_grows_with_diameter() {
        let time = |n: u64| {
            let mut slots = 0u64;
            for seed in 0..5 {
                let mut proto = MultiHopCast::with_config(n, 4, 0.25);
                let out = Simulation::new(&mut proto)
                    .topology(&Topology::Line)
                    .config(informed_cfg())
                    .run(100 + seed);
                assert!(out.all_informed);
                slots += out.slots;
            }
            slots
        };
        assert!(
            time(32) > time(8),
            "a 4x deeper line must take longer to flood"
        );
    }

    #[test]
    fn survives_jamming_on_a_grid() {
        let mut proto = MultiHopCast::with_config(16, 8, 0.25);
        let mut eve = UniformFraction::new(5_000, 0.5, 3);
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .topology(&Topology::Grid { cols: 4 })
            .config(informed_cfg())
            .run(4);
        assert!(out.all_informed, "{out:?}");
        assert!(out.eve_spent > 0);
    }

    #[test]
    fn never_halts() {
        let mut proto = MultiHopCast::new(16);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(500))
            .run(5);
        assert!(!out.all_halted);
        assert!(out.nodes.iter().all(|n| n.halted_at.is_none()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        MultiHopCast::new(12);
    }
}
