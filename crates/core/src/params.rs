//! Tunable constants shared by the protocol implementations.
//!
//! The paper's pseudocode fixes every *ratio* (listen probability `1/64`,
//! halting threshold `R/128 = R·p/2`, helper thresholds `1.5Rp²`, `0.9Rp`,
//! `2.2Rp²`, …) but leaves the leading constants of iteration/phase lengths
//! as "sufficiently large" analysis constants (`a`, `b`) chosen for Chernoff
//! slack at asymptotic scale. Those analysis constants are galactic: taken at
//! face value, `MultiCast`'s first iteration alone is `a·6·4⁶·lg²n ≳ 10⁶`
//! slots and `MultiCastAdv` needs `Θ(1/α)`-epoch waits that multiply run
//! length by `2^{Θ(1)/α}`. For a simulable reproduction we keep every
//! functional form and re-anchor the constants; each deviation is recorded
//! here next to the value it replaces (see also DESIGN.md §5). The
//! experiments in EXPERIMENTS.md verify the *asymptotic shapes* — which are
//! unaffected by the re-anchoring — empirically.

/// Exact base-2 logarithm of a power of two.
///
/// # Panics
/// Panics if `n` is not a positive power of two (the paper assumes `n` is a
/// power of two throughout; see Section 3).
#[inline]
pub fn lg_pow2(n: u64) -> u32 {
    assert!(n.is_power_of_two(), "{n} is not a power of two");
    n.trailing_zeros()
}

/// `lg(max(x, 2))` as an f64, for lengths like `a·lg T̂`.
#[inline]
pub fn lg_f64(x: u64) -> f64 {
    (x.max(2) as f64).log2()
}

/// Round `x` up to a `u64` slot count, clamped to a sane maximum so schedule
/// arithmetic can never overflow downstream additions.
#[inline]
pub fn ceil_slots(x: f64) -> u64 {
    const MAX: f64 = (1u64 << 60) as f64;
    if x <= 1.0 {
        1
    } else if x >= MAX {
        1u64 << 60
    } else {
        x.ceil() as u64
    }
}

/// Parameters of `MultiCastCore` (Section 4, Figure 1).
#[derive(Clone, Copy, Debug)]
pub struct CoreParams {
    /// Iteration length multiplier: iterations have `R = ⌈a · lg T̂⌉` slots,
    /// `T̂ = max(T, n)`. Paper: `a` is "some sufficiently large constant";
    /// default 10240 — calibrated so one iteration comfortably contains a
    /// complete epidemic broadcast at `p = 1/64`: measured completion is
    /// ≈ 2900·lg n slots (mean; worst of 20 seeds ≈ 1.35×), so `a·lg T̂ ≥
    /// a·lg n` leaves a ≥ 2.5× margin for all `n ≤ 1024`.
    pub a: f64,
    /// Listen/broadcast probability per slot. Paper: `1/64` (the
    /// `coin ← rnd(1, 64)` draw).
    pub p: f64,
    /// Halting threshold as a fraction of `R·p`: halt iff `Nn < ratio·R·p`.
    /// Paper: `R/128`, i.e. `ratio = 1/2` of `R·p` with `p = 1/64`.
    pub halt_ratio: f64,
}

impl Default for CoreParams {
    fn default() -> Self {
        Self {
            a: 10240.0,
            p: 1.0 / 64.0,
            halt_ratio: 0.5,
        }
    }
}

/// Parameters of `MultiCast` (Section 5, Figure 2) and of its
/// channel-limited variant `MultiCast(C)` (Section 7, Figure 5).
#[derive(Clone, Copy, Debug)]
pub struct McParams {
    /// Iteration length multiplier: iteration `i ≥ 6` has
    /// `R_i = ⌈a · i · 4^{i−6} · lg²n⌉` *rounds*. Paper: `R_i = a·i·4^i·lg²n`
    /// with "sufficiently large" `a`; we anchor the geometric growth at the
    /// first iteration (absorbing the paper's `4⁶` into `a`) and default
    /// `a = 512`: measured epidemic completion at `p_6 = 1/64` is
    /// ≈ 2900·lg n slots (worst of 20 seeds ≈ 1.35× that), so
    /// `R_6 = 512·6·lg²n` leaves a ≥ 3× margin for all `n ∈ [16, 1024]`.
    pub a: f64,
    /// First iteration index. Paper: 6 (so that `p_i = 2^{−i}` starts at
    /// `1/64`).
    pub first_iteration: u32,
    /// Halting threshold as a fraction of `R_i·p_i`: halt iff
    /// `Nn < ratio·R_i·p_i`. Paper: `R_i/2^{i+1} = R_i·p_i/2`, i.e. `1/2`.
    pub halt_ratio: f64,
}

impl Default for McParams {
    fn default() -> Self {
        Self {
            a: 512.0,
            first_iteration: 6,
            halt_ratio: 0.5,
        }
    }
}

impl McParams {
    /// Rounds in iteration `i` for network size `n`:
    /// `R_i = ⌈a · i · 4^{i−i₀} · lg²n⌉`.
    pub fn rounds(&self, i: u32, n: u64) -> u64 {
        let lg2n = lg_f64(n) * lg_f64(n);
        let growth = 4f64.powi(i as i32 - self.first_iteration as i32);
        ceil_slots(self.a * i as f64 * growth * lg2n)
    }

    /// Listening/broadcasting probability in iteration `i`: `p_i = 2^{−i}`.
    pub fn p(&self, i: u32) -> f64 {
        0.5f64.powi(i as i32)
    }
}

/// Parameters of `MultiCastAdv` (Section 6, Figure 4) and of its
/// channel-limited variant `MultiCastAdv(C)` (Section 7, Figure 6).
///
/// # Threshold re-anchoring (documented deviation)
///
/// The paper's helper/halt thresholds interlock with its analysis constants
/// (`x₂ = y₂ = 10⁻⁴` blocking fractions, a `⌈2/α⌉`-epoch halt delay and an
/// `11/α`-epoch halt horizon). Taken literally they make the halting noise
/// threshold `Nn ≤ Rp/3000` unreachable until collision noise `≈ 2p²` decays
/// below `1/3000`, i.e. `Θ(1/α)` additional epochs, each `2^{2α}×` longer
/// than the last — a `2^{Θ(1)}/α`-factor blow-up that is pure constant. We
/// re-anchor:
///
/// | quantity            | paper        | here (default) | separation it must keep |
/// |---------------------|--------------|----------------|--------------------------|
/// | `Nm ≥ θ_m·Rp²`      | `θ_m = 1.5`  | `1.2`          | good phase `E ≈ 2e^{−2p}Rp²` above; `j ≥ lg n` phases `E ≤ Rp²` below |
/// | `Ns ≥ θ_s·Rp`       | `θ_s = 0.9`  | `0.75`         | good phase `E ≈ e^{−2p}Rp` above; `j < lg n − 1` large-`p` phases below |
/// | `N'm ≤ θ'_m·Rp²`    | `θ'_m = 2.2` | `2.2`          | good phase `E ≈ 2e^{−2p}Rp²` below; `j < lg n −1` phases `E ≥ 4e^{−4p}Rp²` above |
/// | `Nn ≤ θ_n·Rp`       | `1/3000`     | `1/40`         | collision noise `≈ 2p²` below (needs `p ≲ 0.1`); Eve must push noise above `θ_n` to block halting, paying `Θ(θ_n·n·R)` per blocked epoch |
/// | halt delay (epochs) | `⌈2/α⌉`      | `2`            | halting nodes have `p` reduced `2^{−2α}×` vs. helper formation; promotion thresholds are `p`-monotone so stragglers promote in any clean epoch in between |
///
/// Every separation above is verified empirically by experiment E9 and the
/// `multicast_adv` test suite across `n ∈ {16 … 128}`.
#[derive(Clone, Copy, Debug)]
pub struct AdvParams {
    /// The tunable exponent `α ∈ (0, 1/4)` of Theorem 6.10. Smaller `α`
    /// improves the asymptotic exponents but inflates the constant
    /// (`2^{Θ(1)/α}`), exactly as the paper warns.
    pub alpha: f64,
    /// Phase length multiplier: each step of an `(i, j)`-phase has
    /// `R(i, j) = ⌈b · 2^{2α(i−j)} · i³⌉` slots. Paper: "sufficiently large
    /// constant"; default 2.
    pub b: f64,
    /// Helper threshold on message receptions: `Nm ≥ θ_m·Rp²`.
    pub theta_m: f64,
    /// Helper threshold on silent slots: `Ns ≥ θ_s·Rp`.
    pub theta_s: f64,
    /// Helper cap on message-or-beacon receptions: `N'm ≤ θ'_m·Rp²`.
    pub theta_m_prime: f64,
    /// Halting threshold on noisy slots: `Nn ≤ θ_n·Rp`.
    pub theta_n: f64,
    /// Epochs a helper waits before it may halt (`i − iˆ ≥ halt_delay`).
    pub halt_delay: u32,
    /// Channel cap for `MultiCastAdv(C)`: phases with `j > lg C` are cut
    /// off, and at `j = lg C` the `N'm` condition is dropped (Figure 6).
    /// `None` = unlimited channels (plain `MultiCastAdv`).
    pub channel_cap: Option<u64>,
}

impl Default for AdvParams {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            b: 2.0,
            theta_m: 1.2,
            theta_s: 0.75,
            theta_m_prime: 2.2,
            theta_n: 1.0 / 40.0,
            halt_delay: 2,
            channel_cap: None,
        }
    }
}

impl AdvParams {
    /// Validate the parameter combination.
    pub fn validated(self) -> Self {
        assert!(
            self.alpha > 0.0 && self.alpha < 0.25,
            "alpha must lie in (0, 1/4), got {}",
            self.alpha
        );
        assert!(self.b > 0.0);
        if let Some(c) = self.channel_cap {
            assert!(
                c.is_power_of_two(),
                "channel cap must be a power of two, got {c}"
            );
        }
        self
    }

    /// Step length of an `(i, j)`-phase: `R(i,j) = ⌈b·2^{2α(i−j)}·i³⌉`.
    pub fn r(&self, i: u32, j: u32) -> u64 {
        debug_assert!(j < i);
        let d = (i - j) as f64;
        ceil_slots(self.b * 2f64.powf(2.0 * self.alpha * d) * (i as f64).powi(3))
    }

    /// Action probability of an `(i, j)`-phase: `p(i,j) = 2^{−α(i−j)}/2`.
    pub fn p(&self, i: u32, j: u32) -> f64 {
        debug_assert!(j < i);
        let d = (i - j) as f64;
        2f64.powf(-self.alpha * d) / 2.0
    }

    /// Highest phase index in epoch `i` (inclusive): `min(i−1, lg C)`.
    pub fn max_phase(&self, i: u32) -> u32 {
        let natural = i - 1;
        match self.channel_cap {
            Some(c) => natural.min(lg_pow2(c)),
            None => natural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_pow2_on_powers() {
        assert_eq!(lg_pow2(1), 0);
        assert_eq!(lg_pow2(2), 1);
        assert_eq!(lg_pow2(1024), 10);
    }

    #[test]
    #[should_panic]
    fn lg_pow2_rejects_non_powers() {
        lg_pow2(24);
    }

    #[test]
    fn ceil_slots_clamps() {
        assert_eq!(ceil_slots(0.3), 1);
        assert_eq!(ceil_slots(2.2), 3);
        assert_eq!(ceil_slots(f64::INFINITY), 1u64 << 60);
    }

    #[test]
    fn mc_iteration_lengths_grow_4x_per_iteration() {
        let p = McParams::default();
        let r6 = p.rounds(6, 256);
        let r7 = p.rounds(7, 256);
        let r8 = p.rounds(8, 256);
        // R_i = a·i·4^{i−6}·lg²n: ratio between consecutive iterations is
        // 4·(i+1)/i.
        assert_eq!(r6, (512.0 * 6.0 * 64.0) as u64);
        assert!((r7 as f64 / r6 as f64 - 4.0 * 7.0 / 6.0).abs() < 0.01);
        assert!((r8 as f64 / r7 as f64 - 4.0 * 8.0 / 7.0).abs() < 0.01);
    }

    #[test]
    fn mc_probability_halves_each_iteration() {
        let p = McParams::default();
        assert_eq!(p.p(6), 1.0 / 64.0);
        assert_eq!(p.p(7), 1.0 / 128.0);
    }

    #[test]
    fn adv_r_and_p_follow_formulas() {
        let a = AdvParams {
            alpha: 0.25 - 1e-9,
            b: 1.0,
            ..AdvParams::default()
        };
        // i − j = 4, alpha ≈ 1/4: 2^{2·(1/4)·4} = 4; i³ = 1000.
        let r = a.r(10, 6);
        assert!((r as f64 - 4.0 * 1000.0).abs() / 4000.0 < 0.01, "r = {r}");
        let p = a.p(10, 6);
        assert!((p - 0.25).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn adv_p_decreases_in_distance() {
        let a = AdvParams::default();
        assert!(a.p(10, 9) > a.p(10, 5));
        assert!(a.p(10, 5) > a.p(20, 5));
        assert!(a.p(7, 6) <= 0.5);
    }

    #[test]
    fn adv_phase_cap() {
        let mut a = AdvParams::default();
        assert_eq!(a.max_phase(5), 4);
        a.channel_cap = Some(4); // lg C = 2
        assert_eq!(a.max_phase(5), 2);
        assert_eq!(a.max_phase(2), 1, "cap not binding in early epochs");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn adv_rejects_alpha_out_of_range() {
        AdvParams {
            alpha: 0.3,
            ..AdvParams::default()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn adv_rejects_non_pow2_cap() {
        AdvParams {
            channel_cap: Some(6),
            ..AdvParams::default()
        }
        .validated();
    }
}
