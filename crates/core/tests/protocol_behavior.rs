//! Cross-parameter behavioural tests for the protocol implementations.

use rcb_adversary::UniformFraction;
use rcb_core::{AdvParams, MultiCast, MultiCastAdv, MultiCastC, MultiCastCore};
use rcb_sim::{EngineConfig, Sampling, Simulation};

/// `MultiCast` completes at the first iteration boundary for every network
/// size in the calibrated range when Eve is absent.
#[test]
fn multicast_first_boundary_across_network_sizes() {
    for n in [16u64, 32, 64, 128] {
        let mut proto = MultiCast::new(n);
        let r6 = proto.iteration_rounds(6);
        let out = Simulation::new(&mut proto).run(n);
        assert!(out.all_informed, "n = {n}");
        assert!(out.all_halted, "n = {n}");
        assert_eq!(out.slots, r6, "n = {n}: should end at the first boundary");
        assert_eq!(out.safety_violations(), 0, "n = {n}");
    }
}

/// `MultiCast(C)` completes for every power-of-two channel count.
#[test]
fn multicast_c_all_channel_counts() {
    let n = 16u64;
    for c in [1u64, 2, 4, 8] {
        let mut proto = MultiCastC::new(n, c);
        let out = Simulation::new(&mut proto).run(c + 100);
        assert!(out.all_informed && out.all_halted, "C = {c}");
        assert_eq!(out.safety_violations(), 0, "C = {c}");
        assert_eq!(
            out.slots % proto.round_len(),
            0,
            "C = {c}: runs stop at whole rounds"
        );
    }
}

/// `MultiCastCore` degrades gracefully when the declared `T` underestimates
/// Eve's actual budget: the iteration length is sized for the declared
/// value, but the halting rule still refuses to stop while her jamming is
/// loud, so safety holds and only the per-iteration error probability
/// guarantee weakens (Section 4's reason `T` must be known).
#[test]
fn core_with_underestimated_budget_stays_safe() {
    let n = 64u64;
    let declared_t = 1_000u64;
    let actual_t = 1_000_000u64;
    let mut proto = MultiCastCore::new(n, declared_t);
    let mut eve = UniformFraction::new(actual_t, 0.9, 5);
    let out = Simulation::new(&mut proto).adversary(&mut eve).run(3);
    assert!(out.all_informed);
    assert!(out.all_halted);
    assert_eq!(out.safety_violations(), 0);
    assert!(out.eve_spent <= actual_t);
}

/// The dense (reference) sampling path agrees with the sparse path on the
/// two-step `MultiCastAdv` structure as well — the protocol with the most
/// intricate coin semantics.
#[test]
fn adv_dense_and_sparse_sampling_agree() {
    let n = 16u64;
    let params = AdvParams {
        alpha: 0.24,
        ..AdvParams::default()
    };
    let run_mode = |sampling: Sampling, seed: u64| {
        let mut proto = MultiCastAdv::with_params(n, params);
        let cfg = EngineConfig {
            sampling,
            ..EngineConfig::default()
        };
        let out = Simulation::new(&mut proto).config(cfg).run(seed);
        assert!(out.all_halted && out.all_informed);
        for node in &out.nodes {
            assert_eq!(node.extra.get("helper_phase"), Some(3.0));
        }
        out.slots as f64
    };
    let sparse: f64 = (0..3).map(|s| run_mode(Sampling::Sparse, s)).sum::<f64>() / 3.0;
    let dense: f64 = (0..3)
        .map(|s| run_mode(Sampling::DensePerNode, s))
        .sum::<f64>()
        / 3.0;
    let ratio = sparse / dense;
    assert!(
        (0.7..1.4).contains(&ratio),
        "sampling modes diverge on MultiCastAdv: {sparse} vs {dense}"
    );
}

/// Moderate jamming must never be *cheaper* for the nodes than no jamming —
/// monotonicity sanity across budgets.
#[test]
fn multicast_cost_is_monotone_in_adversary_strength() {
    let n = 16u64;
    let mut costs = Vec::new();
    for (t, frac) in [(0u64, 0.0), (400_000u64, 0.9), (1_600_000u64, 0.9)] {
        let mut proto = MultiCast::new(n);
        let out = if t == 0 {
            Simulation::new(&mut proto).run(9)
        } else {
            let mut eve = UniformFraction::new(t, frac, 11);
            Simulation::new(&mut proto).adversary(&mut eve).run(9)
        };
        assert!(out.all_halted);
        costs.push(out.max_cost());
    }
    assert!(costs[0] < costs[1], "jamming must cost the nodes something");
    assert!(costs[1] < costs[2], "more jamming must cost more");
}

/// Source cost is in line with everyone else's (the epidemic shares the
/// broadcast burden — no node is a hotspot), which is what distinguishes
/// these protocols from single-transmitter schemes.
#[test]
fn broadcast_burden_is_shared() {
    let n = 64u64;
    let mut proto = MultiCast::new(n);
    let out = Simulation::new(&mut proto).run(13);
    assert!(out.all_halted);
    let source = out.nodes[0].cost() as f64;
    let mean = out.mean_cost();
    assert!(
        source < 2.0 * mean,
        "source cost {source} should be comparable to mean {mean}"
    );
}

/// Per-node costs concentrate: max/mean stays small (the per-slot action
/// coins are i.i.d., so Chernoff keeps every node near the mean) — this is
/// why the paper can bound the *max* node cost, not just the average.
#[test]
fn per_node_costs_concentrate() {
    let n = 64u64;
    let mut proto = MultiCast::new(n);
    let mut eve = UniformFraction::new(200_000, 0.7, 17);
    let out = Simulation::new(&mut proto).adversary(&mut eve).run(15);
    assert!(out.all_halted);
    let ratio = out.max_cost() as f64 / out.mean_cost();
    assert!(
        ratio < 1.3,
        "max/mean cost ratio {ratio:.3} — costs should concentrate"
    );
}

/// An `(α, b)` grid sanity check: every valid combination completes and
/// localizes helpers correctly (the threshold calibration is not tuned to a
/// single parameter point).
#[test]
fn adv_parameter_grid() {
    for (alpha, b) in [(0.2f64, 2.0f64), (0.24, 2.0), (0.24, 4.0)] {
        let params = AdvParams {
            alpha,
            b,
            ..AdvParams::default()
        };
        let mut proto = MultiCastAdv::with_params(16, params);
        let out = Simulation::new(&mut proto).run(21);
        assert!(out.all_informed && out.all_halted, "alpha={alpha} b={b}");
        assert_eq!(out.safety_violations(), 0);
        for node in &out.nodes {
            assert_eq!(
                node.extra.get("helper_phase"),
                Some(3.0),
                "alpha={alpha} b={b}: helper localization must hold"
            );
        }
    }
}
