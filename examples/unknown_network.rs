//! Unknown network: watching `MultiCastAdv` discover `n`.
//!
//! `MultiCastAdv` (Section 6) knows neither the network size nor the
//! adversary's budget. It guesses `n` via an epoch/phase structure — phase
//! `(i, j)` bets "`n ≈ 2^{j+1}`" on `2^j` channels — and uses the
//! silence/message/beacon statistics of each phase to recognise the one
//! correct guess. This example narrates a run: epoch by epoch, how many
//! nodes are informed, when the first **helper** appears (and in which
//! phase — Lemmas 6.1–6.3 say it can only be `j = lg n − 1`), and when
//! nodes start halting.
//!
//! ```text
//! cargo run --release --example unknown_network
//! ```

use rcb::core::{AdvParams, MultiCastAdv};
use rcb::sim::{Observer, Simulation, SlotProfile};

/// Observer that prints one line per epoch and flags status milestones.
#[derive(Default)]
struct Narrator {
    last_epoch: u32,
    informed_prev: u32,
    first_informed_all: bool,
    halted: u32,
}

impl Observer for Narrator {
    fn on_boundary(&mut self, slot: u64, profile: &SlotProfile, active: u32, informed: u32) {
        if profile.seg_major != self.last_epoch {
            self.last_epoch = profile.seg_major;
            println!(
                "epoch {:>2} begins @ slot {:>10} | informed {:>3} | active {:>3}",
                profile.seg_major, slot, informed, active
            );
        }
        if informed > self.informed_prev {
            self.informed_prev = informed;
        }
    }

    fn on_informed(&mut self, node: u32, slot: u64) {
        if !self.first_informed_all {
            println!("    slot {slot:>10}: node {node} informed");
        }
    }

    fn on_halted(&mut self, node: u32, slot: u64) {
        self.halted += 1;
        if self.halted <= 3 || self.halted.is_multiple_of(8) {
            println!(
                "    slot {slot:>10}: node {node} HALTS ({} total)",
                self.halted
            );
        }
    }
}

fn main() {
    let n: u64 = 16;
    let params = AdvParams {
        alpha: 0.24,
        ..AdvParams::default()
    };
    println!("unknown network — MultiCastAdv, actual n = {n} (the protocol does not know this!)");
    println!("alpha = {}, no adversary\n", params.alpha);

    let mut protocol = MultiCastAdv::with_params(n, params);
    let mut narrator = Narrator::default();
    let outcome = Simulation::new(&mut protocol)
        .observer(&mut narrator)
        .run(2024);

    println!("\noutcome:");
    println!(
        "  all informed: {} | all halted: {}",
        outcome.all_informed, outcome.all_halted
    );
    println!("  total slots:  {}", outcome.slots);
    println!("  max node cost: {}", outcome.max_cost());

    // Where did nodes become helpers? The analysis says: only at
    // j = lg n − 1, i.e. the phase whose channel count 2^j = n/2 matches the
    // network — the protocol has effectively *measured* n.
    let want = (n as f64).log2() as u32 - 1;
    println!("\nhelper phases (paper: must all be j = lg n − 1 = {want}):");
    for node in &outcome.nodes {
        if let (Some(i), Some(j)) = (
            node.extra.get("helper_epoch"),
            node.extra.get("helper_phase"),
        ) {
            assert_eq!(j as u32, want, "helper outside the good phase!");
            if node.id < 4 {
                println!(
                    "  node {:>2}: became helper in phase (i = {i}, j = {j})",
                    node.id
                );
            }
        }
    }
    println!("  ... all {} nodes: j = {want}  ✓", outcome.nodes.len());
    println!(
        "\nThe protocol inferred lg n = {} without ever being told n — that inference\n\
         (not the broadcast itself) is what most of Section 6's machinery buys.",
        want + 1
    );
}
