//! Energy race: bankrupting the jammer.
//!
//! The defining plot of resource competitiveness (Definition 3.1): sweep
//! Eve's budget `T` and compare her spend against the *worst-off* node's
//! spend, for a resource-competitive protocol (`MultiCast`) and an
//! energy-naive baseline (`Decay`, whose listeners pay every slot).
//!
//! Expected shape: `MultiCast`'s node cost grows like `√T` — the gap to Eve
//! widens without bound — while the baseline's listeners pay `Θ(T)`,
//! matching her one-for-one. That asymmetry is why jamming a
//! resource-competitive network is a losing proposition.
//!
//! Budgets are chosen so each step of the sweep lets Eve block one more
//! `MultiCast` iteration (blocking iteration `i` costs her
//! `Θ(R_i · n/2)`, and `R_i` grows ~4x per iteration — so useful budgets
//! are spaced ~4x apart).
//!
//! ```text
//! cargo run --release --example energy_race
//! ```

use rcb::harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};
use rcb::stats::{fit_power_law, Table};

fn main() {
    let n: u64 = 16;
    let mc_budgets = [400_000u64, 1_600_000, 6_400_000, 35_000_000];
    let decay_budgets = [400_000u64, 1_600_000];
    let seeds = 2u64;

    println!("energy race — n = {n}, MultiCast budgets {mc_budgets:?}, {seeds} seeds each\n");

    let mut specs = Vec::new();
    for &t in &mc_budgets {
        for s in 0..seeds {
            specs.push(TrialSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.9 },
                90_000 + t + s,
            ));
        }
    }
    for &t in &decay_budgets {
        for s in 0..seeds {
            specs.push(TrialSpec::new(
                ProtocolKind::Decay { n },
                AdversaryKind::Burst { t, start: 0 },
                91_000 + t + s,
            ));
        }
    }
    let results = run_trials(&specs, 0);

    let mean_max = |proto: &str, t: u64| -> Option<f64> {
        let batch: Vec<_> = results
            .iter()
            .filter(|r| r.protocol == proto && r.budget == t)
            .collect();
        if batch.is_empty() {
            return None;
        }
        Some(batch.iter().map(|r| r.max_cost).sum::<u64>() as f64 / batch.len() as f64)
    };

    let mut table = Table::new(&[
        "T (budget)",
        "MultiCast max node",
        "MC node/Eve ratio",
        "Decay max node",
        "Decay node/Eve ratio",
    ]);
    let mut mc_points = Vec::new();
    let mut decay_points = Vec::new();
    for &t in &mc_budgets {
        let mc = mean_max("MultiCast", t).expect("swept");
        mc_points.push((t as f64, mc));
        let decay_cell = match mean_max("Decay", t) {
            Some(dc) => {
                decay_points.push((t as f64, dc));
                (format!("{dc:.0}"), format!("{:.3}", dc / t as f64))
            }
            None => ("-".into(), "-".into()),
        };
        table.row(&[
            t.to_string(),
            format!("{mc:.0}"),
            format!("{:.4}", mc / t as f64),
            decay_cell.0,
            decay_cell.1,
        ]);
    }
    println!("{}", table.markdown());

    let (_, beta_mc, r2_mc) = fit_power_law(&mc_points);
    let (_, beta_dc, _) = fit_power_law(&decay_points);
    println!("MultiCast: max node cost ∝ T^{beta_mc:.2} (r² = {r2_mc:.3}) — Theorem 5.4 says ~0.5");
    println!("Decay:     max node cost ∝ T^{beta_dc:.2} — naive listening is Θ(T)");
    let (t_last, mc_last) = *mc_points.last().unwrap();
    println!(
        "\nAt T = {t_last:.0}: a MultiCast node has spent ~{mc_last:.0} units while Eve burned\n\
         {t_last:.0} — she pays ~{:.0}x per unit of damage, and the exponent gap\n\
         (≈0.5 vs 1.0) means the multiple only grows with T.",
        t_last / mc_last
    );
}
