//! Campaign catalog: drive a registered scenario end-to-end from code.
//!
//! The scenario registry (`rcb::campaign`) is the declarative face of the
//! Monte-Carlo machinery: pick a named scenario, choose a seed and a trial
//! count, and the campaign engine fans the trials out across cores,
//! aggregates them streamingly, and hands back a schema-versioned report —
//! the same artifact `rcb run <scenario>` writes as `BENCH_<scenario>.json`.
//!
//! ```text
//! cargo run --release --example campaign_catalog
//! ```

use rcb::campaign::{find, registry, run_campaign, CampaignConfig};

fn main() {
    println!("rcb scenario catalog ({} entries):\n", registry().len());
    for s in registry() {
        println!("  {:<18} {}", s.name, s.summary);
    }

    // Run the baseline race: naive epidemic vs Decay vs MultiCast vs the
    // single-channel comparator, all jam-free.
    let scenario = find("epidemic-race").expect("registered");
    let spec = (scenario.build)();
    println!(
        "\nrunning `{}` — {} cells x 20 trials …\n",
        spec.name,
        spec.cells.len()
    );

    let report = run_campaign(
        &spec,
        &CampaignConfig {
            seed: 42,
            trials_per_cell: 20,
            threads: 0, // one worker per core
            ..Default::default()
        },
    );

    println!("{}", report.to_table());

    // The report is plain data — downstream tooling reads the JSON artifact.
    let json = report.to_json();
    println!(
        "artifact: {} bytes of schema-versioned JSON (rcb run {} --out BENCH_{}.json)",
        json.len(),
        spec.name,
        spec.name
    );

    // Determinism: the same seed reproduces the same artifact bit-for-bit,
    // regardless of thread count — rerun with threads: 1 and compare.
    let serial = run_campaign(
        &spec,
        &CampaignConfig {
            seed: 42,
            trials_per_cell: 20,
            threads: 1,
            ..Default::default()
        },
    );
    assert_eq!(
        json,
        serial.to_json(),
        "campaigns are thread-count invariant"
    );
    println!("verified: parallel and serial runs produced byte-identical artifacts");

    // The newest catalog entry: multi-message broadcast. The k ladder shows
    // completion time growing with the payload count, the last cells show
    // the same protocol jammed and relayed across a grid — all through the
    // same unified Simulation core.
    let scenario = find("multi-message").expect("registered");
    let spec = (scenario.build)();
    println!(
        "\nrunning `{}` — {} cells x 5 trials …\n",
        spec.name,
        spec.cells.len()
    );
    let report = run_campaign(
        &spec,
        &CampaignConfig {
            seed: 42,
            trials_per_cell: 5,
            threads: 0,
            ..Default::default()
        },
    );
    println!("{}", report.to_table());
}
