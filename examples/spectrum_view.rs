//! Spectrum view: an ASCII timeline of the band during a jammed broadcast.
//!
//! Runs `MultiCast` against a pulsed jammer and renders per-slot activity
//! (transmissions, listens, jammed channels, noise heard) as intensity
//! sparklines over time. You can *see* the protocol's structure: the
//! initial epidemic burst of traffic, Eve's pulse train, and the silence
//! after the iteration boundary where everyone halts.
//!
//! ```text
//! cargo run --release --example spectrum_view
//! ```

use rcb::adversary::PeriodicPulse;
use rcb::core::MultiCast;
use rcb::sim::{ObliviousAsAdaptive, Simulation};
use rcb::sim::{Observer, SlotStats};

/// Collects per-slot activity counters for later bucketed rendering.
#[derive(Default)]
struct SpectrumRecorder {
    tx: Vec<u64>,
    rx: Vec<u64>,
    jam: Vec<u64>,
    noise: Vec<u64>,
}

impl Observer for SpectrumRecorder {
    fn on_slot(&mut self, _slot: u64, stats: &SlotStats) {
        self.tx.push(stats.broadcasts);
        self.rx.push(stats.listens);
        self.jam.push(stats.jammed);
        self.noise.push(stats.heard_noise);
    }
}

/// Render a series as a sparkline of `width` buckets (mean per bucket).
fn sparkline(series: &[u64], width: usize) -> String {
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let bucket = series.len().div_ceil(width);
    let means: Vec<f64> = series
        .chunks(bucket)
        .map(|c| c.iter().sum::<u64>() as f64 / c.len() as f64)
        .collect();
    let max = means.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    means
        .iter()
        .map(|&m| {
            let idx = ((m / max) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

fn main() {
    let n: u64 = 32;
    let t: u64 = 60_000;
    println!("spectrum view — MultiCast, n = {n} ({} channels)", n / 2);
    println!("Eve: pulse jammer, 90% of the band for 256 of every 1024 slots, T = {t}\n");

    let mut protocol = MultiCast::new(n);
    let mut eve = PeriodicPulse::new(t, 1024, 256, 0.9, 99);
    let mut eve = ObliviousAsAdaptive(&mut eve);
    let mut rec = SpectrumRecorder::default();
    let outcome = Simulation::new(&mut protocol)
        .adaptive(&mut eve)
        .observer(&mut rec)
        .run(2026);

    let width = 96;
    println!(
        "time ──▶ ({} slots per column, {} slots total)\n",
        rec.tx.len().div_ceil(width),
        outcome.slots
    );
    println!("TX     {}", sparkline(&rec.tx, width));
    println!("RX     {}", sparkline(&rec.rx, width));
    println!("JAM    {}", sparkline(&rec.jam, width));
    println!("NOISE  {}", sparkline(&rec.noise, width));

    println!("\nwhat you are seeing:");
    println!(
        " * TX/RX hum along at ~n·p ≈ {:.1} actions/slot — the sparse epidemic;",
        n as f64 / 64.0 * 2.0
    );
    // Pulse spend rate: frac · (n/2) channels · duty fraction per slot.
    let spend_rate = 0.9 * (n as f64 / 2.0) * (256.0 / 1024.0);
    println!(
        " * JAM shows Eve's pulse train until her budget dies around slot ~{:.0};",
        t as f64 / spend_rate
    );
    println!(" * NOISE tracks JAM (listeners only hear her when they sample a jammed channel);");
    println!(
        " * everything stops at slot {} — the iteration boundary where all {} nodes,",
        outcome.slots, n
    );
    println!("   having heard a quiet iteration, halt together.");
    println!(
        "\noutcome: informed {}/{}, halted {}, max cost {}, Eve spent {}",
        outcome.informed_count(),
        n,
        outcome.all_halted,
        outcome.max_cost(),
        outcome.eve_spent
    );
}
