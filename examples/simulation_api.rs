//! The unified `Simulation` API, end to end.
//!
//! One builder drives every run the engine can do: mount an adversary seat
//! (`Eve::Oblivious` / `Eve::Adaptive` / nothing), optionally a topology,
//! a config, and an observer, then `.run(seed)`. This example walks the
//! four axes that used to be eight separate `run*` entry points, plus the
//! first capability written once against the unified core: multi-message
//! broadcast.
//!
//! ```text
//! cargo run --release --example simulation_api
//! ```

use rcb::adversary::{ReactiveJammer, UniformFraction};
use rcb::core::{MultiCast, MultiHopCast, MultiMessageCast};
use rcb::sim::{EngineConfig, Eve, RecordingObserver, Simulation, Topology};

fn main() {
    // 1. The minimal run: protocol + seed. No adversary seat mounted means
    //    Eve::Silent (a zero-budget Eve); config and observer default too.
    let mut protocol = MultiCast::new(64);
    let out = Simulation::new(&mut protocol).run(42);
    println!(
        "1. silent:     {} slots, all informed = {}, max node cost = {}",
        out.slots,
        out.all_informed,
        out.max_cost()
    );

    // 2. An oblivious jammer (the paper's model): .adversary(..) is sugar
    //    for .eve(Eve::Oblivious(..)).
    let mut protocol = MultiCast::new(64);
    let mut eve = UniformFraction::new(20_000, 0.5, 7);
    let out = Simulation::new(&mut protocol).adversary(&mut eve).run(42);
    println!(
        "2. oblivious:  {} slots, eve spent {}, max node cost = {} (resource-competitive)",
        out.slots,
        out.eve_spent,
        out.max_cost()
    );

    // 3. An adaptive (band-observing) jammer — same builder, different
    //    seat. The explicit Eve spelling shows the unified enum.
    let mut protocol = MultiCast::new(64);
    let mut reactive = ReactiveJammer::new(20_000, 8);
    let out = Simulation::new(&mut protocol)
        .eve(Eve::Adaptive(&mut reactive))
        .run(42);
    println!(
        "3. adaptive:   {} slots, eve spent {}, all informed = {}",
        out.slots, out.eve_spent, out.all_informed
    );

    // 4. A topology + an observer: the message relays hop by hop down a
    //    line while the observer records the informed-growth curve.
    //    Completion = every *reachable* node informed.
    let mut protocol = MultiHopCast::with_config(32, 8, 0.25);
    let mut obs = RecordingObserver::new();
    let cfg = EngineConfig {
        stop_when_all_informed: true,
        ..EngineConfig::capped(10_000_000)
    };
    let out = Simulation::new(&mut protocol)
        .topology(&Topology::Line)
        .config(cfg)
        .observer(&mut obs)
        .run(42);
    println!(
        "4. line topo:  {} slots to flood a diameter-31 line ({} informed events recorded)",
        out.slots,
        obs.informed_slots().len()
    );

    // 5. Multi-message broadcast: k = 4 concurrent payloads multiplexed
    //    through one relay schedule. The engine tracks each message's own
    //    completion slot in RunOutcome::messages.
    let mut protocol = MultiMessageCast::new(32, 4);
    let out = Simulation::new(&mut protocol).config(cfg).run(42);
    println!(
        "5. k=4 msgs:   {} slots; per-message completion:",
        out.slots
    );
    for m in &out.messages {
        println!(
            "     message {}: {} holders, everyone knew it by slot {:?}",
            m.msg, m.informed_count, m.all_informed_at
        );
    }
}
