//! Jamming showdown: every protocol against every adversary.
//!
//! Runs the protocol line-up (MultiCastCore / MultiCast / MultiCastAdv /
//! MultiCast(C) / single-channel baseline) against the adversary line-up
//! (silent, uniform, burst, pulse, sweep, Gilbert–Elliott environmental
//! noise) at a fixed budget, and prints the full matrix: completion time,
//! worst node cost, and Eve's spend.
//!
//! What to look for: every cell completes with zero safety violations, and
//! in every jammed cell the max node cost is a small fraction of Eve's
//! spend — resource competitiveness is strategy-agnostic, which is the
//! point of Definition 3.1 quantifying over *arbitrary* executions.
//!
//! ```text
//! cargo run --release --example jamming_showdown
//! ```

use rcb::harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};
use rcb::stats::Table;

fn main() {
    let n: u64 = 64;
    let t: u64 = 200_000;
    let seed_base: u64 = 1000;

    let protocols: Vec<ProtocolKind> = vec![
        ProtocolKind::Core {
            n,
            t,
            params: Default::default(),
        },
        ProtocolKind::MultiCast {
            n,
            params: Default::default(),
        },
        ProtocolKind::MultiCastC {
            n,
            c: 8,
            params: Default::default(),
        },
        ProtocolKind::SingleChannel {
            n,
            params: Default::default(),
        },
    ];
    let adversaries: Vec<AdversaryKind> = vec![
        AdversaryKind::Silent,
        AdversaryKind::Uniform { t, frac: 0.6 },
        AdversaryKind::Burst { t, start: 0 },
        AdversaryKind::Pulse {
            t,
            period: 64,
            duty: 16,
            frac: 0.9,
        },
        AdversaryKind::Sweep {
            t,
            width: 20,
            step: 3,
        },
        AdversaryKind::GilbertElliott {
            t,
            p_gb: 0.02,
            p_bg: 0.05,
            frac: 0.8,
        },
    ];

    println!("jamming showdown — n = {n}, Eve's budget T = {t}\n");

    let specs: Vec<TrialSpec> = protocols
        .iter()
        .flat_map(|p| {
            adversaries
                .iter()
                .enumerate()
                .map(move |(k, a)| TrialSpec::new(p.clone(), a.clone(), seed_base + k as u64))
        })
        .collect();
    let results = run_trials(&specs, 0);

    let mut table = Table::new(&[
        "protocol",
        "adversary",
        "completed",
        "time (slots)",
        "max node cost",
        "eve spent",
        "eve/max-node",
    ]);
    let mut violations = 0;
    for r in &results {
        violations += r.safety_violations;
        table.row(&[
            r.protocol.to_string(),
            r.adversary.to_string(),
            if r.completed {
                "yes".into()
            } else {
                "NO".into()
            },
            r.completion_time().to_string(),
            r.max_cost.to_string(),
            r.eve_spent.to_string(),
            if r.max_cost > 0 && r.eve_spent > 0 {
                format!("{:.1}x", r.eve_spent as f64 / r.max_cost as f64)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", table.markdown());
    println!("safety violations across the whole matrix: {violations} (must be 0)");
    println!(
        "\nreading guide: the single-channel baseline pays the same energy but needs\n\
         ~n/2x more time under load — the multi-channel speedup of the paper's title.\n\
         MultiCastCore's time barely moves under the front-loaded burst: Section 4's\n\
         fast-recovery property (it halts within one iteration of the jam ending)."
    );
}
