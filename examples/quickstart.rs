//! Quickstart: broadcast a message through a jammed multi-channel network.
//!
//! Runs `MultiCast` (Chen & Zheng, SPAA 2019, Section 5) on a 64-node
//! network against a uniform jammer, and prints what happened: who got the
//! message when, who halted when, and — the point of the paper — how little
//! energy each node spent compared to the adversary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rcb::adversary::UniformFraction;
use rcb::core::MultiCast;
use rcb::sim::{RecordingObserver, Simulation};

fn main() {
    let n: u64 = 64; // power of two; the protocol uses n/2 = 32 channels
    let t: u64 = 100_000; // Eve's energy budget
    let seed: u64 = 42;

    println!(
        "rcb quickstart — MultiCast on n = {n} nodes, {} channels",
        n / 2
    );
    println!("Eve: uniform jammer, budget T = {t}, jams 60% of the band each slot\n");

    let mut protocol = MultiCast::new(n);
    let mut eve = UniformFraction::new(t, 0.6, seed);
    let mut trace = RecordingObserver::new();
    let outcome = Simulation::new(&mut protocol)
        .adversary(&mut eve)
        .observer(&mut trace)
        .run(seed);

    // --- Message dissemination -------------------------------------------
    let informed = trace.informed_slots();
    println!("message dissemination:");
    println!(
        "  nodes informed:        {}/{}",
        outcome.informed_count(),
        n
    );
    if let Some(at) = outcome.all_informed_at {
        println!("  last node informed at: slot {at}");
    }
    if informed.len() >= 4 {
        println!(
            "  milestones:            25% @ slot {}, 50% @ {}, 100% @ {}",
            informed[informed.len() / 4],
            informed[informed.len() / 2],
            informed[informed.len() - 1]
        );
    }

    // --- Termination -------------------------------------------------------
    println!("\ntermination:");
    println!("  all nodes halted:      {}", outcome.all_halted);
    if let Some(last) = outcome.last_halt() {
        println!(
            "  last halt at:          slot {last} (of {} executed)",
            outcome.slots
        );
    }
    println!(
        "  halted-while-uninformed (safety violations): {}",
        outcome.safety_violations()
    );

    // --- The resource-competitiveness headline ------------------------------
    let max = outcome.max_cost();
    let mean = outcome.mean_cost();
    println!("\nenergy (1 unit = one slot of sending/listening/jamming):");
    println!("  Eve spent:             {}", outcome.eve_spent);
    println!("  max node cost:         {max}");
    println!("  mean node cost:        {mean:.1}");
    println!(
        "  advantage:             Eve paid {:.1}x the most expensive node",
        outcome.eve_spent as f64 / max.max(1) as f64
    );
    println!(
        "\nTheorem 5.4 predicts per-node cost Õ(√(T/n)) ≈ {:.0}·polylog — jamming is a\n\
         losing business: doubling Eve's budget only buys ~1.4x node cost.",
        (t as f64 / n as f64).sqrt()
    );
}
