//! Channel scarcity: what does limited spectrum cost?
//!
//! Sweeps the number of available channels `C` from `n/2` down to 1 and
//! runs `MultiCast(C)` at a fixed jamming budget. Corollary 7.1 predicts
//! time `O(T/C + (n/C)·lg²n)` — inversely proportional to `C` — while the
//! per-node energy bound does not depend on `C` at all. "The more channels
//! we have, the faster we can be" (Section 7), and spectrum buys *time*,
//! never *battery*.
//!
//! ```text
//! cargo run --release --example channel_scarcity
//! ```

use rcb::harness::{run_trials, sweep_by, AdversaryKind, ProtocolKind, TrialSpec};
use rcb::stats::{fit_power_law, Table};

fn main() {
    let n: u64 = 64;
    let t: u64 = 100_000;
    let seeds = 5u64;

    println!("channel scarcity — MultiCast(C) at n = {n}, T = {t}, {seeds} seeds per C\n");

    let mut specs = Vec::new();
    for c in [1u64, 2, 4, 8, 16, 32] {
        for s in 0..seeds {
            specs.push(TrialSpec::new(
                ProtocolKind::MultiCastC {
                    n,
                    c,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.6 },
                7_000 + c * 100 + s,
            ));
        }
    }
    let results = run_trials(&specs, 0);

    // Recover C from the spec order (results preserve order).
    let mut table = Table::new(&[
        "C (channels)",
        "time (slots, mean)",
        "time x C",
        "max node cost (mean)",
        "completion",
    ]);
    let cs = [1u64, 2, 4, 8, 16, 32];
    let mut points = Vec::new();
    for (idx, &c) in cs.iter().enumerate() {
        let batch = &results[idx * seeds as usize..(idx + 1) * seeds as usize];
        let point = sweep_by(batch, |_| c as f64).remove(0);
        points.push((c as f64, point.time.mean));
        table.row(&[
            c.to_string(),
            format!("{:.0}", point.time.mean),
            format!("{:.2e}", point.time.mean * c as f64),
            format!("{:.0}", point.max_cost.mean),
            format!("{:.0}%", point.completion_rate * 100.0),
        ]);
    }
    println!("{}", table.markdown());

    let (_, beta, r2) = fit_power_law(&points);
    println!("fit: time ∝ C^{beta:.2} (r² = {r2:.3}); Corollary 7.1 predicts C^-1");
    println!("note how `time x C` is nearly constant while cost stays flat in C.");
}
